//! The exported trace shape: stable, versioned, documented in DESIGN.md
//! §7. Everything here round-trips through `djson` (schema test below).

use djson::impl_json_struct;

/// Version of the trace JSON schema emitted by [`TraceSnapshot`].
/// Incremented on any backwards-incompatible shape change.
pub const SCHEMA_VERSION: u32 = 1;

/// Aggregated statistics of one named span (timed region).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Metric path, e.g. `lp_hta/relaxation`.
    pub name: String,
    /// Number of times the span ran.
    pub count: u64,
    /// Total wall time across all runs, nanoseconds.
    pub total_ns: u64,
    /// Fastest single run, nanoseconds.
    pub min_ns: u64,
    /// Slowest single run, nanoseconds.
    pub max_ns: u64,
}

impl_json_struct!(SpanStat {
    name,
    count,
    total_ns,
    min_ns,
    max_ns
});

/// Final value of one monotonic counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStat {
    /// Metric path, e.g. `linprog/simplex/pivots`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

impl_json_struct!(CounterStat { name, value });

/// Aggregated statistics of one value histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramStat {
    /// Metric path, e.g. `dta/greedy/residual_items`.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (mean = `sum / count`).
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl_json_struct!(HistogramStat {
    name,
    count,
    sum,
    min,
    max
});

/// One merged, name-sorted export of everything recorded since the last
/// reset. This is the JSON written by `repro --trace` / `dsmec --trace`
/// and embedded by `repro --perf` in `BENCH_parallel.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub version: u32,
    /// Span aggregates, sorted by name.
    pub spans: Vec<SpanStat>,
    /// Counter values, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Histogram aggregates, sorted by name.
    pub histograms: Vec<HistogramStat>,
}

impl_json_struct!(TraceSnapshot {
    version,
    spans,
    counters,
    histograms
});

impl TraceSnapshot {
    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a span aggregate by exact name.
    #[must_use]
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Looks up a counter value by exact name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a histogram aggregate by exact name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The schema round-trip the ISSUE asks for: emit → parse with djson
    /// → assert span/counter shape.
    #[test]
    fn snapshot_round_trips_through_djson() {
        let snap = TraceSnapshot {
            version: SCHEMA_VERSION,
            spans: vec![SpanStat {
                name: "lp_hta/relaxation".into(),
                count: 3,
                total_ns: 1_500,
                min_ns: 400,
                max_ns: 700,
            }],
            counters: vec![CounterStat {
                name: "linprog/simplex/pivots".into(),
                value: 42,
            }],
            histograms: vec![HistogramStat {
                name: "dta/greedy/residual_items".into(),
                count: 2,
                sum: 9.0,
                min: 3.0,
                max: 6.0,
            }],
        };
        let text = djson::to_string_pretty(&snap);
        let back: TraceSnapshot = djson::from_str(&text).unwrap();
        assert_eq!(back, snap);

        // The documented top-level shape, checked structurally too.
        let value = djson::parse(&text).unwrap();
        let djson::Json::Obj(fields) = &value else {
            panic!("snapshot must serialize as an object");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["version", "spans", "counters", "histograms"]);
    }

    #[test]
    fn lookup_helpers_find_by_name() {
        let snap = TraceSnapshot {
            version: SCHEMA_VERSION,
            spans: vec![],
            counters: vec![CounterStat {
                name: "cache/scenario/hits".into(),
                value: 7,
            }],
            histograms: vec![],
        };
        assert_eq!(snap.counter("cache/scenario/hits"), Some(7));
        assert_eq!(snap.counter("cache/scenario/misses"), None);
        assert!(snap.span("nope").is_none());
        assert!(snap.histogram("nope").is_none());
        assert!(!snap.is_empty());
    }
}
