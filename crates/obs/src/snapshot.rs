//! The exported trace shape: stable, versioned, documented in DESIGN.md
//! §7. Everything here round-trips through `djson` (schema test below).
//!
//! ## Versioning / compatibility rule
//!
//! Schema changes are **additive**: new top-level keys may appear, the
//! existing ones never change shape, and `version` is bumped to mark the
//! addition. To keep every released reader working on every future file,
//! [`TraceSnapshot`] deliberately bypasses `djson`'s strict object
//! decoder at the top level: unknown top-level keys are ignored and the
//! `events` array (new in v2) defaults to empty — so a v2 reader parses
//! v1 files and a v1-shaped reader keeps parsing v2 aggregates. The
//! nested record types stay strict; their shapes are frozen per version.

use djson::{impl_json_struct, FromJson, Json, JsonError, ToJson};

/// Version of the trace JSON schema emitted by [`TraceSnapshot`].
/// v1: aggregates only. v2: adds the flight-recorder `events` array.
pub const SCHEMA_VERSION: u32 = 2;

/// Aggregated statistics of one named span (timed region).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Metric path, e.g. `lp_hta/relaxation`.
    pub name: String,
    /// Number of times the span ran.
    pub count: u64,
    /// Total wall time across all runs, nanoseconds.
    pub total_ns: u64,
    /// Fastest single run, nanoseconds.
    pub min_ns: u64,
    /// Slowest single run, nanoseconds.
    pub max_ns: u64,
}

impl_json_struct!(SpanStat {
    name,
    count,
    total_ns,
    min_ns,
    max_ns
});

/// Final value of one monotonic counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStat {
    /// Metric path, e.g. `linprog/simplex/pivots`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

impl_json_struct!(CounterStat { name, value });

/// Aggregated statistics of one value histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramStat {
    /// Metric path, e.g. `dta/greedy/residual_items`.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (mean = `sum / count`).
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl_json_struct!(HistogramStat {
    name,
    count,
    sum,
    min,
    max
});

/// One flight-recorder event: a single finished occurrence of a span,
/// with identity and parent linkage (schema v2, see DESIGN.md §7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Metric path, same namespace as [`SpanStat::name`].
    pub name: String,
    /// Process-unique span id (> 0; ids are never reused).
    pub id: u64,
    /// Id of the enclosing span, 0 for a root. Usually the innermost
    /// open span on the same thread; fan-out workers link across
    /// threads via `mec_obs::span_with_parent`.
    pub parent: u64,
    /// Dense id of the thread the span ran on.
    pub thread: u64,
    /// Start time, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// End time, same epoch; `end_ns >= start_ns`.
    pub end_ns: u64,
}

impl_json_struct!(SpanEvent {
    name,
    id,
    parent,
    thread,
    start_ns,
    end_ns
});

impl SpanEvent {
    /// Wall time of this occurrence, nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One merged, name-sorted export of everything recorded since the last
/// reset. This is the JSON written by `repro --trace` / `dsmec --trace`
/// and embedded by `repro --perf` in `BENCH_parallel.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// Schema version ([`SCHEMA_VERSION`]) of the *writer*. Readers
    /// accept any version (see the module-level compatibility rule).
    pub version: u32,
    /// Span aggregates, sorted by name.
    pub spans: Vec<SpanStat>,
    /// Counter values, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Histogram aggregates, sorted by name.
    pub histograms: Vec<HistogramStat>,
    /// Flight-recorder events sorted by start time, empty unless events
    /// were enabled (and in every v1 file). New in schema v2.
    pub events: Vec<SpanEvent>,
}

impl ToJson for TraceSnapshot {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".to_string(), self.version.to_json()),
            ("spans".to_string(), self.spans.to_json()),
            ("counters".to_string(), self.counters.to_json()),
            ("histograms".to_string(), self.histograms.to_json()),
            ("events".to_string(), self.events.to_json()),
        ])
    }
}

impl FromJson for TraceSnapshot {
    /// Tolerant top-level decode: every section defaults to empty when
    /// absent (v1 files have no `events`), unknown keys are skipped
    /// (future versions only add keys), only `version` is required.
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let Json::Obj(entries) = value else {
            return Err(JsonError::expected("object", value).at("TraceSnapshot"));
        };
        let mut snap = TraceSnapshot {
            version: 0,
            spans: Vec::new(),
            counters: Vec::new(),
            histograms: Vec::new(),
            events: Vec::new(),
        };
        let mut saw_version = false;
        for (key, field) in entries {
            let pathed = |e: JsonError| e.at(format!("TraceSnapshot.{key}"));
            match key.as_str() {
                "version" => {
                    snap.version = u32::from_json(field).map_err(pathed)?;
                    saw_version = true;
                }
                "spans" => snap.spans = Vec::from_json(field).map_err(pathed)?,
                "counters" => snap.counters = Vec::from_json(field).map_err(pathed)?,
                "histograms" => snap.histograms = Vec::from_json(field).map_err(pathed)?,
                "events" => snap.events = Vec::from_json(field).map_err(pathed)?,
                _ => {} // forward compatibility: later versions add keys
            }
        }
        if !saw_version {
            return Err(JsonError::msg("missing field `version`").at("TraceSnapshot"));
        }
        Ok(snap)
    }
}

impl TraceSnapshot {
    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
    }

    /// Looks up a span aggregate by exact name.
    #[must_use]
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Looks up a counter value by exact name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a histogram aggregate by exact name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            version: SCHEMA_VERSION,
            spans: vec![SpanStat {
                name: "lp_hta/relaxation".into(),
                count: 3,
                total_ns: 1_500,
                min_ns: 400,
                max_ns: 700,
            }],
            counters: vec![CounterStat {
                name: "linprog/simplex/pivots".into(),
                value: 42,
            }],
            histograms: vec![HistogramStat {
                name: "dta/greedy/residual_items".into(),
                count: 2,
                sum: 9.0,
                min: 3.0,
                max: 6.0,
            }],
            events: vec![
                SpanEvent {
                    name: "sweep/point".into(),
                    id: 1,
                    parent: 0,
                    thread: 1,
                    start_ns: 10,
                    end_ns: 900,
                },
                SpanEvent {
                    name: "lp_hta/relaxation".into(),
                    id: 2,
                    parent: 1,
                    thread: 1,
                    start_ns: 20,
                    end_ns: 420,
                },
            ],
        }
    }

    /// The schema round-trip the ISSUE asks for: emit → parse with djson
    /// → assert span/counter/event shape.
    #[test]
    fn snapshot_round_trips_through_djson() {
        let snap = sample();
        let text = djson::to_string_pretty(&snap);
        let back: TraceSnapshot = djson::from_str(&text).unwrap();
        assert_eq!(back, snap);

        // The documented top-level shape, checked structurally too.
        let value = djson::parse(&text).unwrap();
        let djson::Json::Obj(fields) = &value else {
            panic!("snapshot must serialize as an object");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            ["version", "spans", "counters", "histograms", "events"]
        );
    }

    /// Compat rule, backward half: a v1 file (no `events` key) still
    /// decodes, with an empty event list.
    #[test]
    fn v1_files_without_events_still_parse() {
        let v1 = r#"{
            "version": 1,
            "spans": [{"name": "a", "count": 1, "total_ns": 5, "min_ns": 5, "max_ns": 5}],
            "counters": [],
            "histograms": []
        }"#;
        let snap: TraceSnapshot = djson::from_str(v1).unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.spans.len(), 1);
        assert!(snap.events.is_empty());
    }

    /// Compat rule, forward half: unknown top-level keys from a future
    /// version are ignored, so today's reader parses tomorrow's file.
    #[test]
    fn unknown_top_level_keys_are_ignored() {
        let v3 = r#"{"version": 3, "spans": [], "counters": [], "histograms": [],
                     "events": [], "future_section": [1, 2, 3]}"#;
        let snap: TraceSnapshot = djson::from_str(v3).unwrap();
        assert_eq!(snap.version, 3);
        assert!(snap.is_empty());
    }

    #[test]
    fn missing_version_is_rejected() {
        let err = djson::from_str::<TraceSnapshot>("{\"spans\": []}").unwrap_err();
        assert!(err.to_string().contains("missing field `version`"), "{err}");
    }

    #[test]
    fn event_duration_saturates() {
        let mut e = sample().events[0].clone();
        assert_eq!(e.duration_ns(), 890);
        e.end_ns = 0;
        assert_eq!(e.duration_ns(), 0);
    }

    #[test]
    fn lookup_helpers_find_by_name() {
        let snap = TraceSnapshot {
            version: SCHEMA_VERSION,
            spans: vec![],
            counters: vec![CounterStat {
                name: "cache/scenario/hits".into(),
                value: 7,
            }],
            histograms: vec![],
            events: vec![],
        };
        assert_eq!(snap.counter("cache/scenario/hits"), Some(7));
        assert_eq!(snap.counter("cache/scenario/misses"), None);
        assert!(snap.span("nope").is_none());
        assert!(snap.histogram("nope").is_none());
        assert!(!snap.is_empty());
    }
}
