//! # mec-obs — zero-dependency tracing and metrics
//!
//! The observability substrate for the workspace: span timers, monotonic
//! counters, last-write-wins gauges, log-bucketed value histograms, and
//! an opt-in **flight recorder** of individual span events, aggregated
//! per metric name and exportable as deterministic JSON (via `djson`).
//! std-only, consistent with the hermetic workspace — no crate registry
//! required.
//!
//! ## Design
//!
//! Recording must be cheap enough to sit inside the LP pivot loop and the
//! DTA greedy rounds, and must not serialize the sweep engine's worker
//! threads. Three mechanisms deliver that:
//!
//! * a process-global **enabled flag** ([`set_enabled`]) read with one
//!   relaxed atomic load — when tracing is off (the default), every
//!   recording call is a branch and nothing else;
//! * **thread-local staging**: [`span`], [`counter_add`], and [`observe`]
//!   write into an uncontended per-thread store, so `par_map` workers
//!   never touch a shared lock on the hot path;
//! * a **global registry** guarded by one mutex that staging stores merge
//!   into when their thread exits or when [`flush_current_thread`] is
//!   called explicitly — which the sweep engine's workers do at the end
//!   of their closure, and [`snapshot`] does before capture, so a
//!   snapshot taken mid-run from a long-lived thread never silently
//!   misses that thread's own staged data. Each merge of a non-empty
//!   store bumps the `obs/flush` counter.
//!
//! The thread-exit flush is a *backstop*, not a synchronization point:
//! it runs from a TLS destructor, and `std::thread::scope`'s implicit
//! join only waits for the spawned closure to return — not for the
//! thread's TLS destructors — so a snapshot taken right after a scope
//! can race with a scoped worker's exit flush. Threads joined through
//! `JoinHandle::join` are safe (the underlying `pthread_join` waits for
//! full thread termination). Scoped workers that must be visible at the
//! join point therefore call [`flush_current_thread`] as the last thing
//! in their closure, which is what `mec_bench::par::par_map` does.
//!
//! ## Flight recorder (span events)
//!
//! Aggregates say *that* a phase is slow; the flight recorder says *where
//! the wall-clock goes*. When events are switched on ([`set_events`], off
//! by default), every span additionally records one timestamped event —
//! name, span id, parent span id, thread id, start/end nanoseconds on a
//! shared monotonic epoch — into a **bounded per-thread ring**
//! ([`set_event_capacity`]); on overflow the oldest events are dropped
//! and the `obs/events/dropped` counter incremented, while the aggregates
//! stay exact. Parent linkage comes from a thread-local span stack;
//! [`span_with_parent`] links a span to an explicit parent on *another*
//! thread, which is how `sweep/point` spans on `par_map` workers attach
//! to the experiment span on the coordinating thread. The events land in
//! the [`TraceSnapshot`] (schema v2, `"events"` key — see DESIGN.md §7)
//! and feed the offline `dsmec trace` analysis: self-time tables, the
//! critical path, flamegraph folded stacks, and the regression gate.
//!
//! ## Interval snapshots (the live telemetry plane)
//!
//! [`snapshot`] is cumulative: it reports everything since the last
//! [`reset`], which suits post-mortem traces but not a long-running
//! `dsmec serve` session that wants *rates*. [`snapshot_interval`]
//! closes one **window**: it flushes the calling thread, computes the
//! delta of every counter and histogram against a per-metric cumulative
//! baseline kept since the previous tick, advances the baselines, and
//! returns an [`IntervalSnapshot`] — delta counters (plus the running
//! totals), current gauge values, and windowed histograms with
//! nearest-rank p50/p95/p99 derived from fixed power-of-two log buckets
//! ([`HIST_BUCKETS`] of them, bounds `2^-30 … 2^33`). The cumulative
//! snapshot is untouched: taking interval snapshots never perturbs
//! [`snapshot`]'s output, only reads it.
//!
//! ## Naming convention
//!
//! Metric names are static, `/`-separated paths: `layer/component/metric`
//! (e.g. `linprog/simplex/pivots`, `lp_hta/relaxation`,
//! `dta/greedy/rounds`). Snapshots sort by name, so related metrics list
//! together and output is deterministic.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod snapshot;

pub use snapshot::{
    BucketCount, CounterStat, CounterWindow, GaugeStat, HistogramStat, HistogramWindow,
    IntervalSnapshot, SpanEvent, SpanStat, TraceSnapshot, SCHEMA_VERSION,
};

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Process-global switch; recording calls are no-ops while it is false.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Process-global switch for the flight recorder (span events). Only
/// consulted while [`ENABLED`] is set.
static EVENTS: AtomicBool = AtomicBool::new(false);

/// Ring capacity for staged span events, per store.
static EVENT_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_EVENT_CAPACITY);

/// Span ids are process-unique and never reused; 0 means "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Small dense thread ids for the trace (std's `ThreadId` is opaque).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// Monotonic epoch all event timestamps are offsets from.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The global registry every staging store merges into.
static GLOBAL: Mutex<Store> = Mutex::new(Store::new());

/// Per-metric cumulative baselines behind [`snapshot_interval`]. Locked
/// strictly after [`GLOBAL`] (the only place both are held).
static INTERVAL: Mutex<IntervalBaseline> = Mutex::new(IntervalBaseline::new());

/// Global sequence for gauge writes: [`Store::absorb`] keeps the entry
/// with the larger sequence, so "last write wins" holds across the
/// thread-local staging stores regardless of merge order.
static GAUGE_SEQ: AtomicU64 = AtomicU64::new(1);

/// Default per-store bound on staged span events (see
/// [`set_event_capacity`]).
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Turns recording on or off process-wide. Off (the default) makes every
/// recording call a single relaxed load; already-recorded data is kept
/// until [`reset`].
pub fn set_enabled(on: bool) {
    if on {
        // Anchor the event epoch before the first timestamp is taken.
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the flight recorder (per-span events) on or off. Off by default:
/// events cost one ring write per span plus ~48 bytes each, so they are
/// opt-in on top of [`set_enabled`]. Has no effect while recording as a
/// whole is disabled.
pub fn set_events(on: bool) {
    EVENTS.store(on, Ordering::Relaxed);
}

/// Whether span events are currently being recorded.
#[must_use]
pub fn events_enabled() -> bool {
    enabled() && EVENTS.load(Ordering::Relaxed)
}

/// Bounds the number of staged span events per store (per thread, and for
/// the merged global registry). On overflow the oldest events are dropped
/// and counted under `obs/events/dropped`. A capacity of 0 keeps the
/// recorder effectively off even when [`set_events`] is on.
pub fn set_event_capacity(capacity: usize) {
    EVENT_CAPACITY.store(capacity, Ordering::Relaxed);
}

/// The current per-store event-ring capacity.
#[must_use]
pub fn event_capacity() -> usize {
    EVENT_CAPACITY.load(Ordering::Relaxed)
}

/// Nanoseconds since the process-wide trace epoch.
fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

thread_local! {
    /// Dense per-thread id, assigned on first use.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);

    /// Stack of open span ids on this thread — the parent of a new span
    /// is the top of this stack (or 0 at top level).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// This thread's dense trace id.
fn thread_id() -> u64 {
    THREAD_ID.try_with(|&id| id).unwrap_or(0)
}

/// The id of the innermost span currently open on this thread, or 0.
/// Capture this before fanning work out to other threads and pass it to
/// [`span_with_parent`] so worker spans link back across the thread
/// boundary.
#[must_use]
pub fn current_span_id() -> u64 {
    SPAN_STACK
        .try_with(|s| s.borrow().last().copied().unwrap_or(0))
        .unwrap_or(0)
}

/// Per-span aggregate while recording (not yet exported).
#[derive(Debug, Clone, Copy)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl SpanAgg {
    fn one(ns: u64) -> Self {
        SpanAgg {
            count: 1,
            total_ns: ns,
            min_ns: ns,
            max_ns: ns,
        }
    }

    fn merge(&mut self, other: &SpanAgg) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Number of fixed log-spaced histogram buckets. Bucket `i` covers
/// `(2^(i-31), 2^(i-30)]`; bucket 0 additionally absorbs everything at or
/// below `2^-30` (including zero and negatives) and the last bucket
/// absorbs everything above `2^32` — so the covered span `2^-30 … 2^33`
/// holds every value the workspace observes (nanoseconds-as-ms up to
/// item counts) with ≤ 2× relative quantile error.
pub const HIST_BUCKETS: usize = 64;

/// Exponent of bucket 0's upper bound: `2^BUCKET_MIN_EXP`.
const BUCKET_MIN_EXP: i32 = -30;

/// The bucket index for one observed value. Pure bit manipulation on the
/// IEEE-754 exponent — no libm calls — so the mapping is bit-identical
/// on every platform and thread count.
fn bucket_index(value: f64) -> usize {
    if value <= 0.0 {
        return 0;
    }
    let bits = value.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i32;
    if biased == 0 {
        return 0; // subnormal: far below the smallest bucket bound
    }
    let exp = biased - 1023; // floor(log2(value))
    let exact_pow2 = bits & ((1u64 << 52) - 1) == 0;
    let idx = exp - BUCKET_MIN_EXP + i32::from(!exact_pow2);
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    {
        idx.clamp(0, (HIST_BUCKETS - 1) as i32) as usize
    }
}

/// The inclusive upper bound of bucket `index`: `2^(BUCKET_MIN_EXP + i)`.
#[allow(clippy::cast_sign_loss)]
fn bucket_upper(index: usize) -> f64 {
    let exp = BUCKET_MIN_EXP + i32::try_from(index).unwrap_or(0);
    f64::from_bits(((exp + 1023) as u64) << 52)
}

/// Nearest-rank percentile over bucket counts: walk the cumulative
/// counts to the bucket holding rank `ceil(p/100 · count)` and report
/// its upper bound, clamped into the observed `[min, max]` so quantiles
/// of a window never leave the range actually seen (and single-value
/// histograms are exact).
fn bucket_percentile(buckets: &[u64; HIST_BUCKETS], count: u64, min: f64, max: f64, p: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    #[allow(clippy::cast_possible_truncation)]
    let rank = ((p / 100.0) * count as f64)
        .ceil()
        .max(1.0)
        .min(count as f64) as u64;
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return bucket_upper(i).clamp(min, max);
        }
    }
    max
}

/// Per-histogram aggregate while recording.
#[derive(Debug, Clone, Copy)]
struct HistAgg {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; HIST_BUCKETS],
}

impl HistAgg {
    fn one(value: f64) -> Self {
        let mut buckets = [0u64; HIST_BUCKETS];
        buckets[bucket_index(value)] = 1;
        HistAgg {
            count: 1,
            sum: value,
            min: value,
            max: value,
            buckets,
        }
    }

    fn merge(&mut self, other: &HistAgg) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    fn percentile(&self, p: f64) -> f64 {
        bucket_percentile(&self.buckets, self.count, self.min, self.max, p)
    }
}

/// One gauge cell: the value of the most recent [`gauge_set`] (by the
/// global write sequence, not merge order).
#[derive(Debug, Clone, Copy)]
struct GaugeCell {
    seq: u64,
    value: f64,
}

/// One flight-recorder record: a finished span occurrence.
#[derive(Debug, Clone, Copy)]
struct EventRec {
    name: &'static str,
    id: u64,
    parent: u64,
    thread: u64,
    start_ns: u64,
    end_ns: u64,
}

/// One store of aggregated metrics and staged events — used both
/// per-thread (staging) and globally (registry). Keys are `&'static str`
/// so the hot path never allocates for a name.
#[derive(Debug)]
struct Store {
    spans: BTreeMap<&'static str, SpanAgg>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, GaugeCell>,
    hists: BTreeMap<&'static str, HistAgg>,
    /// Flight-recorder ring: bounded by [`event_capacity`], oldest
    /// dropped first.
    events: VecDeque<EventRec>,
    /// Events evicted from the ring (surfaced as `obs/events/dropped`).
    events_dropped: u64,
    /// Explicit non-empty flushes merged in (surfaced as `obs/flush`).
    flushes: u64,
}

impl Store {
    const fn new() -> Self {
        Store {
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            events: VecDeque::new(),
            events_dropped: 0,
            flushes: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.events.is_empty()
            && self.events_dropped == 0
    }

    fn record_span(&mut self, name: &'static str, ns: u64) {
        match self.spans.get_mut(name) {
            Some(agg) => agg.merge(&SpanAgg::one(ns)),
            None => {
                self.spans.insert(name, SpanAgg::one(ns));
            }
        }
    }

    fn record_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn record_gauge(&mut self, name: &'static str, cell: GaugeCell) {
        match self.gauges.get_mut(name) {
            Some(mine) if mine.seq >= cell.seq => {}
            Some(mine) => *mine = cell,
            None => {
                self.gauges.insert(name, cell);
            }
        }
    }

    fn record_hist(&mut self, name: &'static str, value: f64) {
        match self.hists.get_mut(name) {
            Some(agg) => agg.merge(&HistAgg::one(value)),
            None => {
                self.hists.insert(name, HistAgg::one(value));
            }
        }
    }

    /// Pushes one event, evicting the oldest past `cap`.
    fn record_event(&mut self, rec: EventRec, cap: usize) {
        if cap == 0 {
            self.events_dropped += 1;
            return;
        }
        self.events.push_back(rec);
        while self.events.len() > cap {
            self.events.pop_front();
            self.events_dropped += 1;
        }
    }

    /// Merges `other` into `self`, leaving `other` empty. The merged
    /// event ring keeps the same bound, evicting earliest-merged first.
    fn absorb(&mut self, other: &mut Store) {
        for (name, agg) in std::mem::take(&mut other.spans) {
            match self.spans.get_mut(name) {
                Some(mine) => mine.merge(&agg),
                None => {
                    self.spans.insert(name, agg);
                }
            }
        }
        for (name, delta) in std::mem::take(&mut other.counters) {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, cell) in std::mem::take(&mut other.gauges) {
            self.record_gauge(name, cell);
        }
        for (name, agg) in std::mem::take(&mut other.hists) {
            match self.hists.get_mut(name) {
                Some(mine) => mine.merge(&agg),
                None => {
                    self.hists.insert(name, agg);
                }
            }
        }
        self.events.append(&mut other.events);
        self.events_dropped += std::mem::take(&mut other.events_dropped);
        self.flushes += std::mem::take(&mut other.flushes);
        let cap = event_capacity();
        while self.events.len() > cap {
            self.events.pop_front();
            self.events_dropped += 1;
        }
    }
}

/// Thread-local staging store; its `Drop` flushes whatever the thread
/// recorded into the global registry, so short-lived `par_map` workers
/// contribute without ever locking mid-sweep.
struct Staging(RefCell<Store>);

impl Drop for Staging {
    fn drop(&mut self) {
        let store = self.0.get_mut();
        if !store.is_empty() {
            let mut global = lock_global();
            global.absorb(store);
            if enabled() {
                global.flushes += 1;
            }
        }
    }
}

thread_local! {
    static STAGING: Staging = const { Staging(RefCell::new(Store::new())) };
}

/// Locks the registry ignoring poisoning: aggregates stay consistent
/// because every write is a complete merge.
fn lock_global() -> std::sync::MutexGuard<'static, Store> {
    GLOBAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Cumulative values at the close of the previous interval tick, per
/// metric. [`snapshot_interval`] subtracts these from the current global
/// aggregates to window the stream, then advances them.
struct IntervalBaseline {
    /// Ticks taken since the last [`reset`]; the next snapshot's
    /// `interval` index.
    ticks: u64,
    counters: BTreeMap<&'static str, u64>,
    /// Per-histogram `(count, sum, buckets)` at the previous tick.
    hists: BTreeMap<&'static str, (u64, f64, [u64; HIST_BUCKETS])>,
    /// Baselines of the self-diagnostic registry fields.
    flushes: u64,
    events_dropped: u64,
}

impl IntervalBaseline {
    const fn new() -> Self {
        IntervalBaseline {
            ticks: 0,
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            flushes: 0,
            events_dropped: 0,
        }
    }
}

impl std::fmt::Debug for IntervalBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntervalBaseline")
            .field("ticks", &self.ticks)
            .field("counters", &self.counters.len())
            .field("hists", &self.hists.len())
            .finish_non_exhaustive()
    }
}

fn lock_interval() -> std::sync::MutexGuard<'static, IntervalBaseline> {
    INTERVAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn with_staging(f: impl FnOnce(&mut Store)) {
    // Access during thread teardown (after the staging store was dropped
    // and flushed) falls through to the global registry directly.
    let mut f = Some(f);
    let done = STAGING.try_with(|s| {
        (f.take().expect("first call"))(&mut s.0.borrow_mut());
    });
    if done.is_err() {
        if let Some(f) = f.take() {
            f(&mut lock_global());
        }
    }
}

/// Times a region: records elapsed wall time under `name` when the
/// returned guard drops, plus one flight-recorder event when events are
/// on (parented to the innermost open span on this thread). Inert (no
/// clock read) while recording is disabled at entry.
///
/// ```
/// let _g = mec_obs::span("lp_hta/relaxation");
/// // ... timed work ...
/// ```
#[must_use = "the span measures until the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, None)
}

/// Like [`span`], but links the event to an explicit `parent` span id
/// instead of this thread's innermost open span — the cross-thread edge
/// for fan-out workers. Capture the parent on the coordinating thread
/// with [`current_span_id`] before spawning. With events off this is
/// exactly [`span`].
#[must_use = "the span measures until the guard drops"]
pub fn span_with_parent(name: &'static str, parent: u64) -> SpanGuard {
    open_span(name, Some(parent))
}

fn open_span(name: &'static str, parent: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            start: None,
            event: None,
        };
    }
    let event = if events_enabled() {
        let parent = parent.unwrap_or_else(current_span_id);
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let _ = SPAN_STACK.try_with(|s| s.borrow_mut().push(id));
        Some(OpenEvent {
            id,
            parent,
            thread: thread_id(),
            start_ns: now_ns(),
        })
    } else {
        None
    };
    SpanGuard {
        name,
        start: Some(Instant::now()),
        event,
    }
}

/// The flight-recorder half of a live span.
#[derive(Debug)]
struct OpenEvent {
    id: u64,
    parent: u64,
    thread: u64,
    start_ns: u64,
}

/// Live span timer returned by [`span`]; see there.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    event: Option<OpenEvent>,
}

impl SpanGuard {
    /// Ends the span now instead of at scope end.
    pub fn finish(self) {
        drop(self);
    }

    /// The flight-recorder id of this span (0 when events are off).
    /// Pass to [`span_with_parent`] on another thread to nest under it.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.event.as_ref().map_or(0, |e| e.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let event = self.event.take();
            if let Some(ev) = &event {
                // Unwind this span from the stack; `rposition` tolerates
                // out-of-order finishes of sibling guards.
                let _ = SPAN_STACK.try_with(|s| {
                    let mut stack = s.borrow_mut();
                    if let Some(pos) = stack.iter().rposition(|&id| id == ev.id) {
                        stack.remove(pos);
                    }
                });
            }
            with_staging(|s| {
                s.record_span(self.name, ns);
                if let Some(ev) = event {
                    s.record_event(
                        EventRec {
                            name: self.name,
                            id: ev.id,
                            parent: ev.parent,
                            thread: ev.thread,
                            start_ns: ev.start_ns,
                            end_ns: ev.start_ns.saturating_add(ns),
                        },
                        event_capacity(),
                    );
                }
            });
        }
    }
}

/// Adds `delta` to the monotonic counter `name` (no-op while disabled).
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() && delta > 0 {
        with_staging(|s| s.record_counter(name, delta));
    }
}

/// Records one observation of `value` in the histogram `name` (no-op
/// while disabled). Non-finite values are dropped — the JSON export
/// could not represent them anyway.
pub fn observe(name: &'static str, value: f64) {
    if enabled() && value.is_finite() {
        with_staging(|s| s.record_hist(name, value));
    }
}

/// Sets the gauge `name` to `value`, last write wins (no-op while
/// disabled; non-finite values are dropped like [`observe`]). "Last" is
/// decided by a process-global write sequence, so the winner is the most
/// recent *call* even when several threads' staging stores merge into
/// the registry out of order. Gauges report instantaneous state — queue
/// depth, an SLO rate — and appear in both [`snapshot`] and
/// [`snapshot_interval`] at their current value (never windowed).
pub fn gauge_set(name: &'static str, value: f64) {
    if enabled() && value.is_finite() {
        let seq = GAUGE_SEQ.fetch_add(1, Ordering::Relaxed);
        with_staging(|s| s.record_gauge(name, GaugeCell { seq, value }));
    }
}

/// Merges the calling thread's staged metrics and events into the global
/// registry. Worker threads flush automatically on exit; long-lived
/// threads — the main thread between sweeps, the `par_map` caller at its
/// join point — call this (or [`snapshot`], which flushes first) so a
/// mid-run snapshot does not silently miss their staged data. Each merge
/// of a non-empty store is counted under `obs/flush`.
pub fn flush_current_thread() {
    let _ = STAGING.try_with(|s| {
        let mut staged = s.0.borrow_mut();
        if !staged.is_empty() {
            let mut global = lock_global();
            global.absorb(&mut staged);
            if enabled() {
                global.flushes += 1;
            }
        }
    });
}

/// Alias of [`flush_current_thread`], kept for existing call sites.
pub fn flush() {
    flush_current_thread();
}

/// Clears the global registry, the calling thread's staging store, and
/// the interval baselines behind [`snapshot_interval`] (the next tick is
/// interval 0 again). Metrics still staged on *other* live threads
/// survive and merge on their next flush.
///
/// The calling thread's staged store is **discarded, not flushed**: a
/// reset between two back-to-back serve sessions in one process must not
/// leak the first session's staged epoch counters into the second
/// session's registry via a later flush. (Regression-tested below —
/// clearing only the global registry would do exactly that.)
pub fn reset() {
    let _ = STAGING.try_with(|s| {
        *s.0.borrow_mut() = Store::new();
    });
    *lock_global() = Store::new();
    *lock_interval() = IntervalBaseline::new();
}

/// Flushes the calling thread and returns the merged aggregates plus any
/// flight-recorder events, sorted by metric name / event start time
/// (deterministic output for caching and tests).
#[must_use]
pub fn snapshot() -> TraceSnapshot {
    flush_current_thread();
    let global = lock_global();
    let mut counters: Vec<CounterStat> = global
        .counters
        .iter()
        .map(|(&name, &value)| CounterStat {
            name: name.to_string(),
            value,
        })
        .collect();
    // Self-diagnostics join the regular counters so drops and flush
    // activity are visible in every export.
    if global.events_dropped > 0 {
        counters.push(CounterStat {
            name: "obs/events/dropped".to_string(),
            value: global.events_dropped,
        });
    }
    if global.flushes > 0 {
        counters.push(CounterStat {
            name: "obs/flush".to_string(),
            value: global.flushes,
        });
    }
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    let mut events: Vec<SpanEvent> = global
        .events
        .iter()
        .map(|e| SpanEvent {
            name: e.name.to_string(),
            id: e.id,
            parent: e.parent,
            thread: e.thread,
            start_ns: e.start_ns,
            end_ns: e.end_ns,
        })
        .collect();
    events.sort_by_key(|e| (e.start_ns, e.id));
    TraceSnapshot {
        version: SCHEMA_VERSION,
        spans: global
            .spans
            .iter()
            .map(|(&name, agg)| SpanStat {
                name: name.to_string(),
                count: agg.count,
                total_ns: agg.total_ns,
                min_ns: agg.min_ns,
                max_ns: agg.max_ns,
            })
            .collect(),
        counters,
        gauges: global
            .gauges
            .iter()
            .map(|(&name, cell)| GaugeStat {
                name: name.to_string(),
                value: cell.value,
            })
            .collect(),
        histograms: global
            .hists
            .iter()
            .map(|(&name, agg)| HistogramStat {
                name: name.to_string(),
                count: agg.count,
                sum: agg.sum,
                min: agg.min,
                max: agg.max,
                p50: agg.percentile(50.0),
                p95: agg.percentile(95.0),
                p99: agg.percentile(99.0),
            })
            .collect(),
        events,
    }
}

/// Closes one telemetry window: flushes the calling thread, computes the
/// delta of every counter and histogram against the baselines stored at
/// the previous tick, advances the baselines, and returns the window.
/// Gauges report their current value. The cumulative registry (and thus
/// [`snapshot`]) is read, never modified, so interval ticks cannot
/// disturb a trace being recorded alongside them.
///
/// Windowed histogram `min`/`max` are bucket-bound estimates tightened
/// by the cumulative extremes (exact per-window extremes would need
/// per-window state on the hot path); the percentiles are nearest-rank
/// over the window's bucket deltas, clamped into that range.
#[must_use]
pub fn snapshot_interval() -> IntervalSnapshot {
    flush_current_thread();
    let global = lock_global();
    let mut base = lock_interval();
    let interval = base.ticks;
    base.ticks += 1;

    let mut counters: Vec<CounterWindow> = Vec::with_capacity(global.counters.len() + 2);
    for (&name, &total) in &global.counters {
        let prev = base.counters.insert(name, total).unwrap_or(0);
        counters.push(CounterWindow {
            name: name.to_string(),
            total,
            delta: total.saturating_sub(prev),
        });
    }
    if global.flushes > 0 {
        counters.push(CounterWindow {
            name: "obs/flush".to_string(),
            total: global.flushes,
            delta: global.flushes.saturating_sub(base.flushes),
        });
        base.flushes = global.flushes;
    }
    if global.events_dropped > 0 {
        counters.push(CounterWindow {
            name: "obs/events/dropped".to_string(),
            total: global.events_dropped,
            delta: global.events_dropped.saturating_sub(base.events_dropped),
        });
        base.events_dropped = global.events_dropped;
    }
    counters.sort_by(|a, b| a.name.cmp(&b.name));

    let gauges: Vec<GaugeStat> = global
        .gauges
        .iter()
        .map(|(&name, cell)| GaugeStat {
            name: name.to_string(),
            value: cell.value,
        })
        .collect();

    let mut histograms: Vec<HistogramWindow> = Vec::with_capacity(global.hists.len());
    for (&name, agg) in &global.hists {
        let (prev_count, prev_sum, prev_buckets) = base
            .hists
            .insert(name, (agg.count, agg.sum, agg.buckets))
            .unwrap_or((0, 0.0, [0u64; HIST_BUCKETS]));
        let count = agg.count.saturating_sub(prev_count);
        let mut buckets = [0u64; HIST_BUCKETS];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = agg.buckets[i].saturating_sub(prev_buckets[i]);
        }
        // Window extremes: bucket bounds of the occupied range, tightened
        // by the cumulative extremes (which bound every window).
        let first = buckets.iter().position(|&c| c > 0);
        let last = buckets.iter().rposition(|&c| c > 0);
        let (min, max) = match (first, last) {
            (Some(f), Some(l)) => {
                let lower = if f == 0 { 0.0 } else { bucket_upper(f - 1) };
                (lower.max(agg.min), bucket_upper(l).min(agg.max))
            }
            _ => (0.0, 0.0),
        };
        histograms.push(HistogramWindow {
            name: name.to_string(),
            total_count: agg.count,
            count,
            sum: agg.sum - prev_sum,
            min,
            max,
            p50: bucket_percentile(&buckets, count, min, max, 50.0),
            p95: bucket_percentile(&buckets, count, min, max, 95.0),
            p99: bucket_percentile(&buckets, count, min, max, 99.0),
            buckets: sparse_buckets(&buckets),
        });
    }

    IntervalSnapshot {
        interval,
        counters,
        gauges,
        histograms,
    }
}

/// Compresses a window's bucket counts to the Prometheus `le` form:
/// cumulative counts at each *occupied* bucket's upper bound (ascending
/// bounds, non-decreasing counts; the implicit `+Inf` bucket is the
/// window count itself).
fn sparse_buckets(buckets: &[u64; HIST_BUCKETS]) -> Vec<BucketCount> {
    let mut out = Vec::new();
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c > 0 {
            cum += c;
            out.push(BucketCount {
                le: bucket_upper(i),
                count: cum,
            });
        }
    }
    out
}

/// Serializes tests that toggle the process-global registry. Exposed so
/// downstream crates' tests can share the same exclusion.
pub static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        reset();
        set_enabled(true);
        set_events(false);
        set_event_capacity(DEFAULT_EVENT_CAPACITY);
        guard
    }

    /// Counters recorded by the instrumentation under test, without the
    /// `obs/*` self-diagnostics.
    fn user_counters(snap: &TraceSnapshot) -> Vec<(String, u64)> {
        snap.counters
            .iter()
            .filter(|c| !c.name.starts_with("obs/"))
            .map(|c| (c.name.clone(), c.value))
            .collect()
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _x = exclusive();
        set_enabled(false);
        let g = span("test/span");
        drop(g);
        counter_add("test/counter", 5);
        observe("test/hist", 1.0);
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.events.is_empty());
        assert!(snap.is_empty());
    }

    #[test]
    fn spans_counters_histograms_aggregate() {
        let _x = exclusive();
        for _ in 0..3 {
            let _g = span("test/phase");
        }
        counter_add("test/items", 2);
        counter_add("test/items", 3);
        counter_add("test/zero", 0); // dropped: delta 0 records nothing
        observe("test/size", 4.0);
        observe("test/size", 6.0);
        observe("test/nan", f64::NAN); // dropped: non-finite

        let snap = snapshot();
        assert_eq!(snap.spans.len(), 1);
        let s = &snap.spans[0];
        assert_eq!((s.name.as_str(), s.count), ("test/phase", 3));
        assert!(s.min_ns <= s.max_ns && s.total_ns >= s.max_ns);
        assert_eq!(user_counters(&snap), vec![("test/items".to_string(), 5)]);
        assert_eq!(snap.counter("test/items"), Some(5));
        assert_eq!(snap.counter("test/zero"), None);
        assert_eq!(snap.histograms.len(), 1);
        let h = &snap.histograms[0];
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 10.0, 4.0, 6.0));
        // Events stay off unless opted in.
        assert!(snap.events.is_empty());
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _x = exclusive();
        // `thread::spawn` + `join`, not `thread::scope`: only a real
        // join waits for TLS destructors, which is where the exit flush
        // runs (see the module docs on the scoped-thread caveat).
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    counter_add("test/worker", i + 1);
                    let _g = span("test/worker_span");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        // No explicit flush by the workers: their staging stores flushed
        // when the threads exited.
        let snap = snapshot();
        assert_eq!(snap.counter("test/worker"), Some(1 + 2 + 3 + 4));
        assert_eq!(snap.span("test/worker_span").map(|s| s.count), Some(4));
        // Four worker flushes are visible in the diagnostics (plus
        // possibly this thread's own).
        assert!(snap.counter("obs/flush").unwrap_or(0) >= 4);
    }

    #[test]
    fn flush_current_thread_makes_midrun_data_visible() {
        let _x = exclusive();
        counter_add("test/staged", 7);
        // Peek at the registry *without* snapshot's implicit flush: the
        // data is still thread-local.
        assert_eq!(lock_global().counters.get("test/staged"), None);
        flush_current_thread();
        assert_eq!(lock_global().counters.get("test/staged"), Some(&7));
        let snap = snapshot();
        assert_eq!(snap.counter("test/staged"), Some(7));
        assert!(snap.counter("obs/flush").unwrap_or(0) >= 1);
    }

    #[test]
    fn reset_clears_everything() {
        let _x = exclusive();
        counter_add("test/c", 1);
        let _ = span("test/s");
        set_events(true);
        drop(span("test/e"));
        reset();
        set_events(false);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let _x = exclusive();
        counter_add("test/b", 1);
        counter_add("test/a", 1);
        counter_add("test/c", 1);
        let names: Vec<String> = snapshot()
            .counters
            .into_iter()
            .map(|c| c.name)
            .filter(|n| !n.starts_with("obs/"))
            .collect();
        assert_eq!(names, ["test/a", "test/b", "test/c"]);
    }

    #[test]
    fn events_record_nesting_on_one_thread() {
        let _x = exclusive();
        set_events(true);
        {
            let outer = span("test/outer");
            assert_eq!(current_span_id(), outer.id());
            let inner = span("test/inner");
            assert_eq!(current_span_id(), inner.id());
            inner.finish();
            assert_eq!(current_span_id(), outer.id());
        }
        assert_eq!(current_span_id(), 0);
        let snap = snapshot();
        assert_eq!(snap.events.len(), 2);
        let outer = snap.events.iter().find(|e| e.name == "test/outer").unwrap();
        let inner = snap.events.iter().find(|e| e.name == "test/inner").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.thread, outer.thread);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns >= inner.start_ns);
        // Aggregates record the same two spans.
        assert_eq!(snap.span("test/outer").map(|s| s.count), Some(1));
        assert_eq!(snap.span("test/inner").map(|s| s.count), Some(1));
    }

    #[test]
    fn events_link_across_threads_with_explicit_parent() {
        let _x = exclusive();
        set_events(true);
        let sweep = span("test/sweep");
        let parent = current_span_id();
        assert_eq!(parent, sweep.id());
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(move || {
                    {
                        let _point = span_with_parent("test/point", parent);
                        let _leaf = span("test/leaf"); // nests under point via the stack
                    }
                    // Scoped workers flush explicitly — the scope's
                    // implicit join does not wait for the exit flush.
                    flush_current_thread();
                });
            }
        });
        sweep.finish();
        let snap = snapshot();
        let sweep_ev = snap.events.iter().find(|e| e.name == "test/sweep").unwrap();
        let points: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.name == "test/point")
            .collect();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.parent, sweep_ev.id, "worker span links to coordinator");
            assert_ne!(p.thread, sweep_ev.thread);
        }
        for leaf in snap.events.iter().filter(|e| e.name == "test/leaf") {
            assert!(
                points.iter().any(|p| p.id == leaf.parent),
                "leaf nests under its own thread's point span"
            );
        }
    }

    #[test]
    fn event_ring_overflow_drops_oldest_but_keeps_aggregates_exact() {
        let _x = exclusive();
        set_events(true);
        set_event_capacity(4);
        for _ in 0..10 {
            drop(span("test/ring"));
        }
        let snap = snapshot();
        set_event_capacity(DEFAULT_EVENT_CAPACITY);
        // The ring kept the newest 4; 6 were evicted and counted.
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.counter("obs/events/dropped"), Some(6));
        let ids: Vec<u64> = snap.events.iter().map(|e| e.id).collect();
        let max_id = *ids.iter().max().unwrap();
        assert!(
            ids.iter().all(|&id| id > max_id - 4),
            "oldest events dropped first: {ids:?}"
        );
        // Aggregates are exempt from the bound.
        assert_eq!(snap.span("test/ring").map(|s| s.count), Some(10));
    }

    #[test]
    fn zero_capacity_drops_every_event() {
        let _x = exclusive();
        set_events(true);
        set_event_capacity(0);
        drop(span("test/none"));
        let snap = snapshot();
        set_event_capacity(DEFAULT_EVENT_CAPACITY);
        assert!(snap.events.is_empty());
        assert_eq!(snap.counter("obs/events/dropped"), Some(1));
        assert_eq!(snap.span("test/none").map(|s| s.count), Some(1));
    }

    #[test]
    fn bucket_index_is_exact_exponent_math() {
        // Powers of two land in the bucket they bound; anything strictly
        // above spills into the next one.
        assert_eq!(bucket_upper(bucket_index(1.0)), 1.0);
        assert_eq!(bucket_upper(bucket_index(2.0)), 2.0);
        assert_eq!(bucket_upper(bucket_index(2.0000001)), 4.0);
        assert_eq!(bucket_upper(bucket_index(50.0)), 64.0);
        // Zero, negatives and subnormals collapse into bucket 0; huge
        // values saturate into the last bucket.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.5), 0);
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 2.0), 0);
        assert_eq!(bucket_index(1e300), HIST_BUCKETS - 1);
        // The covered range is 2^-30 .. 2^33.
        assert_eq!(bucket_upper(0), 2.0f64.powi(-30));
        assert_eq!(bucket_upper(HIST_BUCKETS - 1), 2.0f64.powi(33));
    }

    #[test]
    fn histogram_percentiles_are_nearest_rank_over_buckets() {
        let _x = exclusive();
        for v in 1..=100 {
            observe("test/latency", f64::from(v));
        }
        let snap = snapshot();
        let h = snap.histogram("test/latency").unwrap();
        assert_eq!(h.count, 100);
        // Rank 50 lands in (32, 64]; the bucket bound is the estimate.
        assert_eq!(h.p50, 64.0);
        // Ranks 95 and 99 land in (64, 128], clamped to the observed max.
        assert_eq!(h.p95, 100.0);
        assert_eq!(h.p99, 100.0);
        // A single-valued histogram is exact at every percentile.
        observe("test/single", 7.25);
        let snap = snapshot();
        let h = snap.histogram("test/single").unwrap();
        assert_eq!((h.p50, h.p95, h.p99), (7.25, 7.25, 7.25));
    }

    #[test]
    fn gauges_are_last_write_wins_across_threads() {
        let _x = exclusive();
        gauge_set("test/depth", 3.0);
        gauge_set("test/depth", 8.0);
        gauge_set("test/nan", f64::NAN); // dropped: non-finite
        let snap = snapshot();
        assert_eq!(snap.gauge("test/depth"), Some(8.0));
        assert_eq!(snap.gauge("test/nan"), None);

        // A worker's earlier write must not clobber the coordinator's
        // later one, no matter when the worker's staging store merges:
        // the worker writes first but its exit flush lands after the
        // main thread's own write below.
        std::thread::spawn(|| gauge_set("test/order", 1.0))
            .join()
            .expect("worker");
        gauge_set("test/order", 2.0);
        assert_eq!(snapshot().gauge("test/order"), Some(2.0));

        // Out-of-order merge, tested on the store level: the staging
        // store holding the *older* write merges last and must lose.
        let mut registry = Store::new();
        let mut late_flusher = Store::new();
        late_flusher.record_gauge("g", GaugeCell { seq: 1, value: 1.0 });
        registry.record_gauge("g", GaugeCell { seq: 2, value: 2.0 });
        registry.absorb(&mut late_flusher);
        assert_eq!(registry.gauges.get("g").map(|c| c.value), Some(2.0));
    }

    #[test]
    fn interval_snapshots_window_counters_and_histograms() {
        let _x = exclusive();
        counter_add("test/items", 5);
        observe("test/ms", 4.0);
        observe("test/ms", 4.0);
        let w0 = snapshot_interval();
        assert_eq!(w0.interval, 0);
        let c = w0.counter("test/items").unwrap();
        assert_eq!((c.total, c.delta), (5, 5));
        let h = w0.histogram("test/ms").unwrap();
        assert_eq!((h.total_count, h.count, h.sum), (2, 2, 8.0));
        assert_eq!((h.p50, h.p95), (4.0, 4.0));
        assert_eq!(h.buckets.len(), 1);
        assert_eq!((h.buckets[0].le, h.buckets[0].count), (4.0, 2));

        // Second window: only the new activity shows as delta, totals
        // keep accumulating, and an idle histogram windows to zero.
        counter_add("test/items", 3);
        gauge_set("test/depth", 9.0);
        let w1 = snapshot_interval();
        assert_eq!(w1.interval, 1);
        let c = w1.counter("test/items").unwrap();
        assert_eq!((c.total, c.delta), (8, 3));
        assert_eq!(w1.gauge("test/depth"), Some(9.0));
        let h = w1.histogram("test/ms").unwrap();
        assert_eq!((h.total_count, h.count, h.sum), (2, 0, 0.0));
        assert!(h.buckets.is_empty());
        assert_eq!((h.p50, h.p95, h.p99), (0.0, 0.0, 0.0));

        // The cumulative snapshot never noticed the interval ticks.
        let snap = snapshot();
        assert_eq!(snap.counter("test/items"), Some(8));
        assert_eq!(snap.histogram("test/ms").map(|h| h.count), Some(2));
    }

    /// The regression the reset fix guards: staged (unflushed) metrics on
    /// the calling thread and the interval baselines must both die with
    /// `reset()`, or a second serve session in the same process inherits
    /// the first one's epoch counters and tick numbering.
    #[test]
    fn reset_drains_staged_state_and_interval_baselines() {
        let _x = exclusive();
        counter_add("test/session", 5); // staged, deliberately unflushed
        let _ = snapshot_interval(); // tick 0: baseline now holds the 5
        reset();
        // Staged data must not resurface via a later flush…
        flush_current_thread();
        assert_eq!(snapshot().counter("test/session"), None);
        // …and the interval plane restarts from tick 0 with no baseline:
        // a fresh 2 reads as delta 2, not as a negative delta or a
        // continuation of the old tick sequence.
        counter_add("test/session", 2);
        let w = snapshot_interval();
        assert_eq!(w.interval, 0);
        let c = w.counter("test/session").unwrap();
        assert_eq!((c.total, c.delta), (2, 2));
    }
}
