//! # mec-obs — zero-dependency tracing and metrics
//!
//! The observability substrate for the workspace: span timers, monotonic
//! counters, and value histograms, aggregated per metric name and
//! exportable as deterministic JSON (via `djson`). std-only, consistent
//! with the hermetic workspace — no crate registry required.
//!
//! ## Design
//!
//! Recording must be cheap enough to sit inside the LP pivot loop and the
//! DTA greedy rounds, and must not serialize the sweep engine's worker
//! threads. Three mechanisms deliver that:
//!
//! * a process-global **enabled flag** ([`set_enabled`]) read with one
//!   relaxed atomic load — when tracing is off (the default), every
//!   recording call is a branch and nothing else;
//! * **thread-local staging**: [`span`], [`counter_add`], and [`observe`]
//!   write into an uncontended per-thread store, so `par_map` workers
//!   never touch a shared lock on the hot path;
//! * a **global registry** guarded by one mutex that staging stores merge
//!   into when their thread exits (the sweep engine's scoped workers die
//!   before the sweep returns) or when [`flush`] is called explicitly.
//!
//! [`snapshot`] flushes the calling thread and returns the merged
//! [`TraceSnapshot`], whose JSON shape is documented in DESIGN.md §7 and
//! covered by a schema round-trip test.
//!
//! ## Naming convention
//!
//! Metric names are static, `/`-separated paths: `layer/component/metric`
//! (e.g. `linprog/simplex/pivots`, `lp_hta/relaxation`,
//! `dta/greedy/rounds`). Snapshots sort by name, so related metrics list
//! together and output is deterministic.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod snapshot;

pub use snapshot::{CounterStat, HistogramStat, SpanStat, TraceSnapshot, SCHEMA_VERSION};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Process-global switch; recording calls are no-ops while it is false.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The global registry every staging store merges into.
static GLOBAL: Mutex<Store> = Mutex::new(Store::new());

/// Turns recording on or off process-wide. Off (the default) makes every
/// recording call a single relaxed load; already-recorded data is kept
/// until [`reset`].
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Per-span aggregate while recording (not yet exported).
#[derive(Debug, Clone, Copy)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl SpanAgg {
    fn one(ns: u64) -> Self {
        SpanAgg {
            count: 1,
            total_ns: ns,
            min_ns: ns,
            max_ns: ns,
        }
    }

    fn merge(&mut self, other: &SpanAgg) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Per-histogram aggregate while recording.
#[derive(Debug, Clone, Copy)]
struct HistAgg {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl HistAgg {
    fn one(value: f64) -> Self {
        HistAgg {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }

    fn merge(&mut self, other: &HistAgg) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One store of aggregated metrics — used both per-thread (staging) and
/// globally (registry). Keys are `&'static str` so the hot path never
/// allocates for a name.
#[derive(Debug)]
struct Store {
    spans: BTreeMap<&'static str, SpanAgg>,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, HistAgg>,
}

impl Store {
    const fn new() -> Self {
        Store {
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.hists.is_empty()
    }

    fn record_span(&mut self, name: &'static str, ns: u64) {
        match self.spans.get_mut(name) {
            Some(agg) => agg.merge(&SpanAgg::one(ns)),
            None => {
                self.spans.insert(name, SpanAgg::one(ns));
            }
        }
    }

    fn record_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn record_hist(&mut self, name: &'static str, value: f64) {
        match self.hists.get_mut(name) {
            Some(agg) => agg.merge(&HistAgg::one(value)),
            None => {
                self.hists.insert(name, HistAgg::one(value));
            }
        }
    }

    /// Merges `other` into `self`, leaving `other` empty.
    fn absorb(&mut self, other: &mut Store) {
        for (name, agg) in std::mem::take(&mut other.spans) {
            match self.spans.get_mut(name) {
                Some(mine) => mine.merge(&agg),
                None => {
                    self.spans.insert(name, agg);
                }
            }
        }
        for (name, delta) in std::mem::take(&mut other.counters) {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, agg) in std::mem::take(&mut other.hists) {
            match self.hists.get_mut(name) {
                Some(mine) => mine.merge(&agg),
                None => {
                    self.hists.insert(name, agg);
                }
            }
        }
    }
}

/// Thread-local staging store; its `Drop` flushes whatever the thread
/// recorded into the global registry, so short-lived `par_map` workers
/// contribute without ever locking mid-sweep.
struct Staging(RefCell<Store>);

impl Drop for Staging {
    fn drop(&mut self) {
        let store = self.0.get_mut();
        if !store.is_empty() {
            lock_global().absorb(store);
        }
    }
}

thread_local! {
    static STAGING: Staging = const { Staging(RefCell::new(Store::new())) };
}

/// Locks the registry ignoring poisoning: aggregates stay consistent
/// because every write is a complete merge.
fn lock_global() -> std::sync::MutexGuard<'static, Store> {
    GLOBAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn with_staging(f: impl FnOnce(&mut Store)) {
    // Access during thread teardown (after the staging store was dropped
    // and flushed) falls through to the global registry directly.
    let mut f = Some(f);
    let done = STAGING.try_with(|s| {
        (f.take().expect("first call"))(&mut s.0.borrow_mut());
    });
    if done.is_err() {
        if let Some(f) = f.take() {
            f(&mut lock_global());
        }
    }
}

/// Times a region: records elapsed wall time under `name` when the
/// returned guard drops. Inert (no clock read) while recording is
/// disabled at entry.
///
/// ```
/// let _g = mec_obs::span("lp_hta/relaxation");
/// // ... timed work ...
/// ```
#[must_use = "the span measures until the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: enabled().then(Instant::now),
    }
}

/// Live span timer returned by [`span`]; see there.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Ends the span now instead of at scope end.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            with_staging(|s| s.record_span(self.name, ns));
        }
    }
}

/// Adds `delta` to the monotonic counter `name` (no-op while disabled).
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() && delta > 0 {
        with_staging(|s| s.record_counter(name, delta));
    }
}

/// Records one observation of `value` in the histogram `name` (no-op
/// while disabled). Non-finite values are dropped — the JSON export
/// could not represent them anyway.
pub fn observe(name: &'static str, value: f64) {
    if enabled() && value.is_finite() {
        with_staging(|s| s.record_hist(name, value));
    }
}

/// Merges the calling thread's staged metrics into the global registry.
/// Worker threads flush automatically on exit; long-lived threads call
/// this (or [`snapshot`], which flushes first) before reading results.
pub fn flush() {
    with_staging(|staged| {
        if !staged.is_empty() {
            lock_global().absorb(staged);
        }
    });
}

/// Clears the global registry and the calling thread's staging store.
/// Metrics still staged on *other* live threads survive and merge on
/// their next flush.
pub fn reset() {
    with_staging(|staged| {
        *staged = Store::new();
        *lock_global() = Store::new();
    });
}

/// Flushes the calling thread and returns the merged aggregates, sorted
/// by metric name (deterministic output for caching and tests).
#[must_use]
pub fn snapshot() -> TraceSnapshot {
    flush();
    let global = lock_global();
    TraceSnapshot {
        version: SCHEMA_VERSION,
        spans: global
            .spans
            .iter()
            .map(|(&name, agg)| SpanStat {
                name: name.to_string(),
                count: agg.count,
                total_ns: agg.total_ns,
                min_ns: agg.min_ns,
                max_ns: agg.max_ns,
            })
            .collect(),
        counters: global
            .counters
            .iter()
            .map(|(&name, &value)| CounterStat {
                name: name.to_string(),
                value,
            })
            .collect(),
        histograms: global
            .hists
            .iter()
            .map(|(&name, agg)| HistogramStat {
                name: name.to_string(),
                count: agg.count,
                sum: agg.sum,
                min: agg.min,
                max: agg.max,
            })
            .collect(),
    }
}

/// Serializes tests that toggle the process-global registry. Exposed so
/// downstream crates' tests can share the same exclusion.
pub static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        reset();
        set_enabled(true);
        guard
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _x = exclusive();
        set_enabled(false);
        let g = span("test/span");
        drop(g);
        counter_add("test/counter", 5);
        observe("test/hist", 1.0);
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.is_empty());
    }

    #[test]
    fn spans_counters_histograms_aggregate() {
        let _x = exclusive();
        for _ in 0..3 {
            let _g = span("test/phase");
        }
        counter_add("test/items", 2);
        counter_add("test/items", 3);
        counter_add("test/zero", 0); // dropped: delta 0 records nothing
        observe("test/size", 4.0);
        observe("test/size", 6.0);
        observe("test/nan", f64::NAN); // dropped: non-finite

        let snap = snapshot();
        assert_eq!(snap.spans.len(), 1);
        let s = &snap.spans[0];
        assert_eq!((s.name.as_str(), s.count), ("test/phase", 3));
        assert!(s.min_ns <= s.max_ns && s.total_ns >= s.max_ns);
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 5);
        assert_eq!(snap.counter("test/items"), Some(5));
        assert_eq!(snap.counter("test/zero"), None);
        assert_eq!(snap.histograms.len(), 1);
        let h = &snap.histograms[0];
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 10.0, 4.0, 6.0));
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _x = exclusive();
        std::thread::scope(|scope| {
            for i in 0..4 {
                scope.spawn(move || {
                    counter_add("test/worker", i + 1);
                    let _g = span("test/worker_span");
                });
            }
        });
        // No explicit flush by the workers: their staging stores flushed
        // when the threads exited.
        let snap = snapshot();
        assert_eq!(snap.counter("test/worker"), Some(1 + 2 + 3 + 4));
        assert_eq!(snap.span("test/worker_span").map(|s| s.count), Some(4));
    }

    #[test]
    fn reset_clears_everything() {
        let _x = exclusive();
        counter_add("test/c", 1);
        let _ = span("test/s");
        reset();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let _x = exclusive();
        counter_add("test/b", 1);
        counter_add("test/a", 1);
        counter_add("test/c", 1);
        let names: Vec<String> = snapshot().counters.into_iter().map(|c| c.name).collect();
        assert_eq!(names, ["test/a", "test/b", "test/c"]);
    }
}
