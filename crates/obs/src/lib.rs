//! # mec-obs — zero-dependency tracing and metrics
//!
//! The observability substrate for the workspace: span timers, monotonic
//! counters, value histograms, and an opt-in **flight recorder** of
//! individual span events, aggregated per metric name and exportable as
//! deterministic JSON (via `djson`). std-only, consistent with the
//! hermetic workspace — no crate registry required.
//!
//! ## Design
//!
//! Recording must be cheap enough to sit inside the LP pivot loop and the
//! DTA greedy rounds, and must not serialize the sweep engine's worker
//! threads. Three mechanisms deliver that:
//!
//! * a process-global **enabled flag** ([`set_enabled`]) read with one
//!   relaxed atomic load — when tracing is off (the default), every
//!   recording call is a branch and nothing else;
//! * **thread-local staging**: [`span`], [`counter_add`], and [`observe`]
//!   write into an uncontended per-thread store, so `par_map` workers
//!   never touch a shared lock on the hot path;
//! * a **global registry** guarded by one mutex that staging stores merge
//!   into when their thread exits or when [`flush_current_thread`] is
//!   called explicitly — which the sweep engine's workers do at the end
//!   of their closure, and [`snapshot`] does before capture, so a
//!   snapshot taken mid-run from a long-lived thread never silently
//!   misses that thread's own staged data. Each merge of a non-empty
//!   store bumps the `obs/flush` counter.
//!
//! The thread-exit flush is a *backstop*, not a synchronization point:
//! it runs from a TLS destructor, and `std::thread::scope`'s implicit
//! join only waits for the spawned closure to return — not for the
//! thread's TLS destructors — so a snapshot taken right after a scope
//! can race with a scoped worker's exit flush. Threads joined through
//! `JoinHandle::join` are safe (the underlying `pthread_join` waits for
//! full thread termination). Scoped workers that must be visible at the
//! join point therefore call [`flush_current_thread`] as the last thing
//! in their closure, which is what `mec_bench::par::par_map` does.
//!
//! ## Flight recorder (span events)
//!
//! Aggregates say *that* a phase is slow; the flight recorder says *where
//! the wall-clock goes*. When events are switched on ([`set_events`], off
//! by default), every span additionally records one timestamped event —
//! name, span id, parent span id, thread id, start/end nanoseconds on a
//! shared monotonic epoch — into a **bounded per-thread ring**
//! ([`set_event_capacity`]); on overflow the oldest events are dropped
//! and the `obs/events/dropped` counter incremented, while the aggregates
//! stay exact. Parent linkage comes from a thread-local span stack;
//! [`span_with_parent`] links a span to an explicit parent on *another*
//! thread, which is how `sweep/point` spans on `par_map` workers attach
//! to the experiment span on the coordinating thread. The events land in
//! the [`TraceSnapshot`] (schema v2, `"events"` key — see DESIGN.md §7)
//! and feed the offline `dsmec trace` analysis: self-time tables, the
//! critical path, flamegraph folded stacks, and the regression gate.
//!
//! ## Naming convention
//!
//! Metric names are static, `/`-separated paths: `layer/component/metric`
//! (e.g. `linprog/simplex/pivots`, `lp_hta/relaxation`,
//! `dta/greedy/rounds`). Snapshots sort by name, so related metrics list
//! together and output is deterministic.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod snapshot;

pub use snapshot::{
    CounterStat, HistogramStat, SpanEvent, SpanStat, TraceSnapshot, SCHEMA_VERSION,
};

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Process-global switch; recording calls are no-ops while it is false.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Process-global switch for the flight recorder (span events). Only
/// consulted while [`ENABLED`] is set.
static EVENTS: AtomicBool = AtomicBool::new(false);

/// Ring capacity for staged span events, per store.
static EVENT_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_EVENT_CAPACITY);

/// Span ids are process-unique and never reused; 0 means "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Small dense thread ids for the trace (std's `ThreadId` is opaque).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// Monotonic epoch all event timestamps are offsets from.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The global registry every staging store merges into.
static GLOBAL: Mutex<Store> = Mutex::new(Store::new());

/// Default per-store bound on staged span events (see
/// [`set_event_capacity`]).
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Turns recording on or off process-wide. Off (the default) makes every
/// recording call a single relaxed load; already-recorded data is kept
/// until [`reset`].
pub fn set_enabled(on: bool) {
    if on {
        // Anchor the event epoch before the first timestamp is taken.
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the flight recorder (per-span events) on or off. Off by default:
/// events cost one ring write per span plus ~48 bytes each, so they are
/// opt-in on top of [`set_enabled`]. Has no effect while recording as a
/// whole is disabled.
pub fn set_events(on: bool) {
    EVENTS.store(on, Ordering::Relaxed);
}

/// Whether span events are currently being recorded.
#[must_use]
pub fn events_enabled() -> bool {
    enabled() && EVENTS.load(Ordering::Relaxed)
}

/// Bounds the number of staged span events per store (per thread, and for
/// the merged global registry). On overflow the oldest events are dropped
/// and counted under `obs/events/dropped`. A capacity of 0 keeps the
/// recorder effectively off even when [`set_events`] is on.
pub fn set_event_capacity(capacity: usize) {
    EVENT_CAPACITY.store(capacity, Ordering::Relaxed);
}

/// The current per-store event-ring capacity.
#[must_use]
pub fn event_capacity() -> usize {
    EVENT_CAPACITY.load(Ordering::Relaxed)
}

/// Nanoseconds since the process-wide trace epoch.
fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

thread_local! {
    /// Dense per-thread id, assigned on first use.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);

    /// Stack of open span ids on this thread — the parent of a new span
    /// is the top of this stack (or 0 at top level).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// This thread's dense trace id.
fn thread_id() -> u64 {
    THREAD_ID.try_with(|&id| id).unwrap_or(0)
}

/// The id of the innermost span currently open on this thread, or 0.
/// Capture this before fanning work out to other threads and pass it to
/// [`span_with_parent`] so worker spans link back across the thread
/// boundary.
#[must_use]
pub fn current_span_id() -> u64 {
    SPAN_STACK
        .try_with(|s| s.borrow().last().copied().unwrap_or(0))
        .unwrap_or(0)
}

/// Per-span aggregate while recording (not yet exported).
#[derive(Debug, Clone, Copy)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl SpanAgg {
    fn one(ns: u64) -> Self {
        SpanAgg {
            count: 1,
            total_ns: ns,
            min_ns: ns,
            max_ns: ns,
        }
    }

    fn merge(&mut self, other: &SpanAgg) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Per-histogram aggregate while recording.
#[derive(Debug, Clone, Copy)]
struct HistAgg {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl HistAgg {
    fn one(value: f64) -> Self {
        HistAgg {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }

    fn merge(&mut self, other: &HistAgg) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One flight-recorder record: a finished span occurrence.
#[derive(Debug, Clone, Copy)]
struct EventRec {
    name: &'static str,
    id: u64,
    parent: u64,
    thread: u64,
    start_ns: u64,
    end_ns: u64,
}

/// One store of aggregated metrics and staged events — used both
/// per-thread (staging) and globally (registry). Keys are `&'static str`
/// so the hot path never allocates for a name.
#[derive(Debug)]
struct Store {
    spans: BTreeMap<&'static str, SpanAgg>,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, HistAgg>,
    /// Flight-recorder ring: bounded by [`event_capacity`], oldest
    /// dropped first.
    events: VecDeque<EventRec>,
    /// Events evicted from the ring (surfaced as `obs/events/dropped`).
    events_dropped: u64,
    /// Explicit non-empty flushes merged in (surfaced as `obs/flush`).
    flushes: u64,
}

impl Store {
    const fn new() -> Self {
        Store {
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            events: VecDeque::new(),
            events_dropped: 0,
            flushes: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.hists.is_empty()
            && self.events.is_empty()
            && self.events_dropped == 0
    }

    fn record_span(&mut self, name: &'static str, ns: u64) {
        match self.spans.get_mut(name) {
            Some(agg) => agg.merge(&SpanAgg::one(ns)),
            None => {
                self.spans.insert(name, SpanAgg::one(ns));
            }
        }
    }

    fn record_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn record_hist(&mut self, name: &'static str, value: f64) {
        match self.hists.get_mut(name) {
            Some(agg) => agg.merge(&HistAgg::one(value)),
            None => {
                self.hists.insert(name, HistAgg::one(value));
            }
        }
    }

    /// Pushes one event, evicting the oldest past `cap`.
    fn record_event(&mut self, rec: EventRec, cap: usize) {
        if cap == 0 {
            self.events_dropped += 1;
            return;
        }
        self.events.push_back(rec);
        while self.events.len() > cap {
            self.events.pop_front();
            self.events_dropped += 1;
        }
    }

    /// Merges `other` into `self`, leaving `other` empty. The merged
    /// event ring keeps the same bound, evicting earliest-merged first.
    fn absorb(&mut self, other: &mut Store) {
        for (name, agg) in std::mem::take(&mut other.spans) {
            match self.spans.get_mut(name) {
                Some(mine) => mine.merge(&agg),
                None => {
                    self.spans.insert(name, agg);
                }
            }
        }
        for (name, delta) in std::mem::take(&mut other.counters) {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, agg) in std::mem::take(&mut other.hists) {
            match self.hists.get_mut(name) {
                Some(mine) => mine.merge(&agg),
                None => {
                    self.hists.insert(name, agg);
                }
            }
        }
        self.events.append(&mut other.events);
        self.events_dropped += std::mem::take(&mut other.events_dropped);
        self.flushes += std::mem::take(&mut other.flushes);
        let cap = event_capacity();
        while self.events.len() > cap {
            self.events.pop_front();
            self.events_dropped += 1;
        }
    }
}

/// Thread-local staging store; its `Drop` flushes whatever the thread
/// recorded into the global registry, so short-lived `par_map` workers
/// contribute without ever locking mid-sweep.
struct Staging(RefCell<Store>);

impl Drop for Staging {
    fn drop(&mut self) {
        let store = self.0.get_mut();
        if !store.is_empty() {
            let mut global = lock_global();
            global.absorb(store);
            if enabled() {
                global.flushes += 1;
            }
        }
    }
}

thread_local! {
    static STAGING: Staging = const { Staging(RefCell::new(Store::new())) };
}

/// Locks the registry ignoring poisoning: aggregates stay consistent
/// because every write is a complete merge.
fn lock_global() -> std::sync::MutexGuard<'static, Store> {
    GLOBAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn with_staging(f: impl FnOnce(&mut Store)) {
    // Access during thread teardown (after the staging store was dropped
    // and flushed) falls through to the global registry directly.
    let mut f = Some(f);
    let done = STAGING.try_with(|s| {
        (f.take().expect("first call"))(&mut s.0.borrow_mut());
    });
    if done.is_err() {
        if let Some(f) = f.take() {
            f(&mut lock_global());
        }
    }
}

/// Times a region: records elapsed wall time under `name` when the
/// returned guard drops, plus one flight-recorder event when events are
/// on (parented to the innermost open span on this thread). Inert (no
/// clock read) while recording is disabled at entry.
///
/// ```
/// let _g = mec_obs::span("lp_hta/relaxation");
/// // ... timed work ...
/// ```
#[must_use = "the span measures until the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, None)
}

/// Like [`span`], but links the event to an explicit `parent` span id
/// instead of this thread's innermost open span — the cross-thread edge
/// for fan-out workers. Capture the parent on the coordinating thread
/// with [`current_span_id`] before spawning. With events off this is
/// exactly [`span`].
#[must_use = "the span measures until the guard drops"]
pub fn span_with_parent(name: &'static str, parent: u64) -> SpanGuard {
    open_span(name, Some(parent))
}

fn open_span(name: &'static str, parent: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            start: None,
            event: None,
        };
    }
    let event = if events_enabled() {
        let parent = parent.unwrap_or_else(current_span_id);
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let _ = SPAN_STACK.try_with(|s| s.borrow_mut().push(id));
        Some(OpenEvent {
            id,
            parent,
            thread: thread_id(),
            start_ns: now_ns(),
        })
    } else {
        None
    };
    SpanGuard {
        name,
        start: Some(Instant::now()),
        event,
    }
}

/// The flight-recorder half of a live span.
#[derive(Debug)]
struct OpenEvent {
    id: u64,
    parent: u64,
    thread: u64,
    start_ns: u64,
}

/// Live span timer returned by [`span`]; see there.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    event: Option<OpenEvent>,
}

impl SpanGuard {
    /// Ends the span now instead of at scope end.
    pub fn finish(self) {
        drop(self);
    }

    /// The flight-recorder id of this span (0 when events are off).
    /// Pass to [`span_with_parent`] on another thread to nest under it.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.event.as_ref().map_or(0, |e| e.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let event = self.event.take();
            if let Some(ev) = &event {
                // Unwind this span from the stack; `rposition` tolerates
                // out-of-order finishes of sibling guards.
                let _ = SPAN_STACK.try_with(|s| {
                    let mut stack = s.borrow_mut();
                    if let Some(pos) = stack.iter().rposition(|&id| id == ev.id) {
                        stack.remove(pos);
                    }
                });
            }
            with_staging(|s| {
                s.record_span(self.name, ns);
                if let Some(ev) = event {
                    s.record_event(
                        EventRec {
                            name: self.name,
                            id: ev.id,
                            parent: ev.parent,
                            thread: ev.thread,
                            start_ns: ev.start_ns,
                            end_ns: ev.start_ns.saturating_add(ns),
                        },
                        event_capacity(),
                    );
                }
            });
        }
    }
}

/// Adds `delta` to the monotonic counter `name` (no-op while disabled).
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() && delta > 0 {
        with_staging(|s| s.record_counter(name, delta));
    }
}

/// Records one observation of `value` in the histogram `name` (no-op
/// while disabled). Non-finite values are dropped — the JSON export
/// could not represent them anyway.
pub fn observe(name: &'static str, value: f64) {
    if enabled() && value.is_finite() {
        with_staging(|s| s.record_hist(name, value));
    }
}

/// Merges the calling thread's staged metrics and events into the global
/// registry. Worker threads flush automatically on exit; long-lived
/// threads — the main thread between sweeps, the `par_map` caller at its
/// join point — call this (or [`snapshot`], which flushes first) so a
/// mid-run snapshot does not silently miss their staged data. Each merge
/// of a non-empty store is counted under `obs/flush`.
pub fn flush_current_thread() {
    let _ = STAGING.try_with(|s| {
        let mut staged = s.0.borrow_mut();
        if !staged.is_empty() {
            let mut global = lock_global();
            global.absorb(&mut staged);
            if enabled() {
                global.flushes += 1;
            }
        }
    });
}

/// Alias of [`flush_current_thread`], kept for existing call sites.
pub fn flush() {
    flush_current_thread();
}

/// Clears the global registry and the calling thread's staging store.
/// Metrics still staged on *other* live threads survive and merge on
/// their next flush.
pub fn reset() {
    let _ = STAGING.try_with(|s| {
        *s.0.borrow_mut() = Store::new();
    });
    *lock_global() = Store::new();
}

/// Flushes the calling thread and returns the merged aggregates plus any
/// flight-recorder events, sorted by metric name / event start time
/// (deterministic output for caching and tests).
#[must_use]
pub fn snapshot() -> TraceSnapshot {
    flush_current_thread();
    let global = lock_global();
    let mut counters: Vec<CounterStat> = global
        .counters
        .iter()
        .map(|(&name, &value)| CounterStat {
            name: name.to_string(),
            value,
        })
        .collect();
    // Self-diagnostics join the regular counters so drops and flush
    // activity are visible in every export.
    if global.events_dropped > 0 {
        counters.push(CounterStat {
            name: "obs/events/dropped".to_string(),
            value: global.events_dropped,
        });
    }
    if global.flushes > 0 {
        counters.push(CounterStat {
            name: "obs/flush".to_string(),
            value: global.flushes,
        });
    }
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    let mut events: Vec<SpanEvent> = global
        .events
        .iter()
        .map(|e| SpanEvent {
            name: e.name.to_string(),
            id: e.id,
            parent: e.parent,
            thread: e.thread,
            start_ns: e.start_ns,
            end_ns: e.end_ns,
        })
        .collect();
    events.sort_by_key(|e| (e.start_ns, e.id));
    TraceSnapshot {
        version: SCHEMA_VERSION,
        spans: global
            .spans
            .iter()
            .map(|(&name, agg)| SpanStat {
                name: name.to_string(),
                count: agg.count,
                total_ns: agg.total_ns,
                min_ns: agg.min_ns,
                max_ns: agg.max_ns,
            })
            .collect(),
        counters,
        histograms: global
            .hists
            .iter()
            .map(|(&name, agg)| HistogramStat {
                name: name.to_string(),
                count: agg.count,
                sum: agg.sum,
                min: agg.min,
                max: agg.max,
            })
            .collect(),
        events,
    }
}

/// Serializes tests that toggle the process-global registry. Exposed so
/// downstream crates' tests can share the same exclusion.
pub static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        reset();
        set_enabled(true);
        set_events(false);
        set_event_capacity(DEFAULT_EVENT_CAPACITY);
        guard
    }

    /// Counters recorded by the instrumentation under test, without the
    /// `obs/*` self-diagnostics.
    fn user_counters(snap: &TraceSnapshot) -> Vec<(String, u64)> {
        snap.counters
            .iter()
            .filter(|c| !c.name.starts_with("obs/"))
            .map(|c| (c.name.clone(), c.value))
            .collect()
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _x = exclusive();
        set_enabled(false);
        let g = span("test/span");
        drop(g);
        counter_add("test/counter", 5);
        observe("test/hist", 1.0);
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.events.is_empty());
        assert!(snap.is_empty());
    }

    #[test]
    fn spans_counters_histograms_aggregate() {
        let _x = exclusive();
        for _ in 0..3 {
            let _g = span("test/phase");
        }
        counter_add("test/items", 2);
        counter_add("test/items", 3);
        counter_add("test/zero", 0); // dropped: delta 0 records nothing
        observe("test/size", 4.0);
        observe("test/size", 6.0);
        observe("test/nan", f64::NAN); // dropped: non-finite

        let snap = snapshot();
        assert_eq!(snap.spans.len(), 1);
        let s = &snap.spans[0];
        assert_eq!((s.name.as_str(), s.count), ("test/phase", 3));
        assert!(s.min_ns <= s.max_ns && s.total_ns >= s.max_ns);
        assert_eq!(user_counters(&snap), vec![("test/items".to_string(), 5)]);
        assert_eq!(snap.counter("test/items"), Some(5));
        assert_eq!(snap.counter("test/zero"), None);
        assert_eq!(snap.histograms.len(), 1);
        let h = &snap.histograms[0];
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 10.0, 4.0, 6.0));
        // Events stay off unless opted in.
        assert!(snap.events.is_empty());
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _x = exclusive();
        // `thread::spawn` + `join`, not `thread::scope`: only a real
        // join waits for TLS destructors, which is where the exit flush
        // runs (see the module docs on the scoped-thread caveat).
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    counter_add("test/worker", i + 1);
                    let _g = span("test/worker_span");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        // No explicit flush by the workers: their staging stores flushed
        // when the threads exited.
        let snap = snapshot();
        assert_eq!(snap.counter("test/worker"), Some(1 + 2 + 3 + 4));
        assert_eq!(snap.span("test/worker_span").map(|s| s.count), Some(4));
        // Four worker flushes are visible in the diagnostics (plus
        // possibly this thread's own).
        assert!(snap.counter("obs/flush").unwrap_or(0) >= 4);
    }

    #[test]
    fn flush_current_thread_makes_midrun_data_visible() {
        let _x = exclusive();
        counter_add("test/staged", 7);
        // Peek at the registry *without* snapshot's implicit flush: the
        // data is still thread-local.
        assert_eq!(lock_global().counters.get("test/staged"), None);
        flush_current_thread();
        assert_eq!(lock_global().counters.get("test/staged"), Some(&7));
        let snap = snapshot();
        assert_eq!(snap.counter("test/staged"), Some(7));
        assert!(snap.counter("obs/flush").unwrap_or(0) >= 1);
    }

    #[test]
    fn reset_clears_everything() {
        let _x = exclusive();
        counter_add("test/c", 1);
        let _ = span("test/s");
        set_events(true);
        drop(span("test/e"));
        reset();
        set_events(false);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let _x = exclusive();
        counter_add("test/b", 1);
        counter_add("test/a", 1);
        counter_add("test/c", 1);
        let names: Vec<String> = snapshot()
            .counters
            .into_iter()
            .map(|c| c.name)
            .filter(|n| !n.starts_with("obs/"))
            .collect();
        assert_eq!(names, ["test/a", "test/b", "test/c"]);
    }

    #[test]
    fn events_record_nesting_on_one_thread() {
        let _x = exclusive();
        set_events(true);
        {
            let outer = span("test/outer");
            assert_eq!(current_span_id(), outer.id());
            let inner = span("test/inner");
            assert_eq!(current_span_id(), inner.id());
            inner.finish();
            assert_eq!(current_span_id(), outer.id());
        }
        assert_eq!(current_span_id(), 0);
        let snap = snapshot();
        assert_eq!(snap.events.len(), 2);
        let outer = snap.events.iter().find(|e| e.name == "test/outer").unwrap();
        let inner = snap.events.iter().find(|e| e.name == "test/inner").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.thread, outer.thread);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns >= inner.start_ns);
        // Aggregates record the same two spans.
        assert_eq!(snap.span("test/outer").map(|s| s.count), Some(1));
        assert_eq!(snap.span("test/inner").map(|s| s.count), Some(1));
    }

    #[test]
    fn events_link_across_threads_with_explicit_parent() {
        let _x = exclusive();
        set_events(true);
        let sweep = span("test/sweep");
        let parent = current_span_id();
        assert_eq!(parent, sweep.id());
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(move || {
                    {
                        let _point = span_with_parent("test/point", parent);
                        let _leaf = span("test/leaf"); // nests under point via the stack
                    }
                    // Scoped workers flush explicitly — the scope's
                    // implicit join does not wait for the exit flush.
                    flush_current_thread();
                });
            }
        });
        sweep.finish();
        let snap = snapshot();
        let sweep_ev = snap.events.iter().find(|e| e.name == "test/sweep").unwrap();
        let points: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.name == "test/point")
            .collect();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.parent, sweep_ev.id, "worker span links to coordinator");
            assert_ne!(p.thread, sweep_ev.thread);
        }
        for leaf in snap.events.iter().filter(|e| e.name == "test/leaf") {
            assert!(
                points.iter().any(|p| p.id == leaf.parent),
                "leaf nests under its own thread's point span"
            );
        }
    }

    #[test]
    fn event_ring_overflow_drops_oldest_but_keeps_aggregates_exact() {
        let _x = exclusive();
        set_events(true);
        set_event_capacity(4);
        for _ in 0..10 {
            drop(span("test/ring"));
        }
        let snap = snapshot();
        set_event_capacity(DEFAULT_EVENT_CAPACITY);
        // The ring kept the newest 4; 6 were evicted and counted.
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.counter("obs/events/dropped"), Some(6));
        let ids: Vec<u64> = snap.events.iter().map(|e| e.id).collect();
        let max_id = *ids.iter().max().unwrap();
        assert!(
            ids.iter().all(|&id| id > max_id - 4),
            "oldest events dropped first: {ids:?}"
        );
        // Aggregates are exempt from the bound.
        assert_eq!(snap.span("test/ring").map(|s| s.count), Some(10));
    }

    #[test]
    fn zero_capacity_drops_every_event() {
        let _x = exclusive();
        set_events(true);
        set_event_capacity(0);
        drop(span("test/none"));
        let snap = snapshot();
        set_event_capacity(DEFAULT_EVENT_CAPACITY);
        assert!(snap.events.is_empty());
        assert_eq!(snap.counter("obs/events/dropped"), Some(1));
        assert_eq!(snap.span("test/none").map(|s| s.count), Some(1));
    }
}
