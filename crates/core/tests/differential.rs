//! Differential oracles: the production algorithms checked against the
//! exact branch-and-bound references on instances small enough to solve
//! exactly.
//!
//! * LP-HTA vs [`ExactBnB`]: every LP-HTA output must be feasible
//!   (deadlines, device capacity, station capacity), and on instances
//!   where LP-HTA cancels nothing its energy can never beat the exact
//!   optimum — the optimum is a true lower bound.
//! * `divide_balanced` vs `exact_min_max`, `divide_min_devices` vs
//!   `exact_min_devices`: the greedy divisions must stay valid covers
//!   and can never do better than the exact optima they approximate.
//!
//! All instances are drawn from the seeded in-repo harness
//! ([`detrand::prop`]); failures print a `DSMEC_PROP_SEED` replay seed.

use detrand::prop::run_cases;
use detrand::{prop_assert, ChaCha8Rng};
use dsmec_core::costs::CostTable;
use dsmec_core::dta::{
    divide_balanced, divide_min_devices, exact_min_devices, exact_min_max, Coverage,
};
use dsmec_core::hta::{ExactBnB, HtaAlgorithm, LpHta};
use dsmec_core::{Assignment, Decision};
use mec_sim::data::{DataItemId, DataUniverse, ItemSet};
use mec_sim::task::{ExecutionSite, HolisticTask};
use mec_sim::topology::MecSystem;
use mec_sim::units::Bytes;
use mec_sim::workload::{Scenario, ScenarioConfig};

/// A small scenario ExactBnB can afford: ≤ 2 stations, ≤ 10 tasks.
fn small_scenario(rng: &mut ChaCha8Rng) -> Scenario {
    let mut cfg = ScenarioConfig::paper_defaults(rng.gen_range(0..1_000_000u64));
    cfg.num_stations = rng.gen_range(1..3usize);
    cfg.devices_per_station = rng.gen_range(2..5usize);
    cfg.tasks_total = rng.gen_range(3..11usize);
    cfg.max_input_kb = 2000.0;
    cfg.generate().expect("paper-shaped config generates")
}

/// Checks the three hard feasibility conditions of the HTA problem for
/// every non-cancelled task: deadline, owner-device capacity, station
/// capacity. Cloud capacity is unconstrained by the model.
fn assert_feasible(
    label: &str,
    system: &MecSystem,
    tasks: &[HolisticTask],
    costs: &CostTable,
    assignment: &Assignment,
) -> Result<(), String> {
    const TOL: f64 = 1e-9;
    let mut device_used = vec![0.0f64; system.num_devices()];
    let mut station_used = vec![0.0f64; system.num_stations()];
    for (idx, d) in assignment.decisions().iter().enumerate() {
        let Decision::Assigned(site) = d else {
            continue;
        };
        prop_assert!(
            costs.feasible(idx, *site, tasks[idx].deadline),
            "{label}: task {idx} at {site} misses its deadline"
        );
        match site {
            ExecutionSite::Device => device_used[tasks[idx].owner.0] += tasks[idx].resource.value(),
            ExecutionSite::Station => {
                let sid = system
                    .device(tasks[idx].owner)
                    .map_err(|e| e.to_string())?
                    .station;
                station_used[sid.0] += tasks[idx].resource.value();
            }
            ExecutionSite::Cloud => {}
        }
    }
    for dev in system.devices() {
        prop_assert!(
            device_used[dev.id.0] <= dev.max_resource.value() * (1.0 + TOL),
            "{label}: device {:?} over capacity ({} > {})",
            dev.id,
            device_used[dev.id.0],
            dev.max_resource.value()
        );
    }
    for st in system.stations() {
        prop_assert!(
            station_used[st.id.0] <= st.max_resource.value() * (1.0 + TOL),
            "{label}: station {:?} over capacity ({} > {})",
            st.id,
            station_used[st.id.0],
            st.max_resource.value()
        );
    }
    Ok(())
}

/// Energy of the assigned tasks only (cancelled tasks burn nothing).
fn assigned_energy(costs: &CostTable, assignment: &Assignment) -> f64 {
    assignment
        .decisions()
        .iter()
        .enumerate()
        .filter_map(|(idx, d)| match d {
            Decision::Assigned(site) => Some(costs.at(idx, *site).energy.value()),
            Decision::Cancelled => None,
        })
        .sum()
}

#[test]
fn lp_hta_is_feasible_and_never_beats_the_exact_optimum() {
    let mut exact_solved = 0u32;
    run_cases("lp_hta_vs_exact", 24, |rng| {
        let s = small_scenario(rng);
        let costs = CostTable::build(&s.system, &s.tasks).map_err(|e| e.to_string())?;
        let lp = LpHta::paper()
            .assign(&s.system, &s.tasks, &costs)
            .map_err(|e| e.to_string())?;
        assert_feasible("lp-hta", &s.system, &s.tasks, &costs, &lp)?;

        let exact = ExactBnB::default()
            .solve(&s.system, &s.tasks, &costs)
            .map_err(|e| e.to_string())?;
        match exact {
            Some((exact_asg, exact_energy)) => {
                exact_solved += 1;
                assert_feasible("exact", &s.system, &s.tasks, &costs, &exact_asg)?;
                // The recomputed objective matches what the solver reports.
                let recomputed = assigned_energy(&costs, &exact_asg);
                prop_assert!(
                    (recomputed - exact_energy).abs() <= 1e-6 * (1.0 + exact_energy),
                    "exact objective drifted: {recomputed} vs {exact_energy}"
                );
                // On instances LP-HTA solves completely, the exact
                // optimum is a lower bound on its energy (up to LP
                // rounding noise).
                if lp.cancelled().is_empty() {
                    let lp_energy = assigned_energy(&costs, &lp);
                    prop_assert!(
                        exact_energy <= lp_energy * (1.0 + 1e-6) + 1e-9,
                        "LP-HTA beat the exact optimum: {lp_energy} < {exact_energy}"
                    );
                }
            }
            None => {
                // The instance is infeasible with every task assigned;
                // LP-HTA must have shed load to stay feasible.
                prop_assert!(
                    !lp.cancelled().is_empty(),
                    "exact says infeasible but LP-HTA cancelled nothing"
                );
            }
        }
        Ok(())
    });
    assert!(
        exact_solved > 0,
        "the exact reference never solved an instance; the oracle is vacuous"
    );
}

/// A random data universe where every item has at least one owner, so
/// both the greedy and the exact divisions are well-defined.
fn random_universe(rng: &mut ChaCha8Rng) -> (DataUniverse, ItemSet) {
    let items = rng.gen_range(3..9usize);
    let devices = rng.gen_range(2..5usize);
    let mut holdings = vec![Vec::new(); devices];
    for item in 0..items {
        // Guaranteed owner plus random extras.
        holdings[rng.gen_range(0..devices)].push(item);
        for extra in holdings.iter_mut() {
            if rng.gen_bool(0.3) {
                extra.push(item);
            }
        }
    }
    let sizes = (0..items)
        .map(|_| Bytes::from_kb(rng.gen_range(1.0..100.0)))
        .collect();
    let holdings = holdings
        .into_iter()
        .map(|ids| ItemSet::from_ids(items, ids.into_iter().map(DataItemId)))
        .collect();
    let universe = DataUniverse::new(sizes, holdings).expect("every item has an owner");
    let required = ItemSet::full(items);
    (universe, required)
}

#[test]
fn divide_balanced_never_beats_the_exact_min_max_division() {
    run_cases("dta_workload_vs_exact", 48, |rng| {
        let (universe, required) = random_universe(rng);
        let greedy = divide_balanced(&universe, &required).map_err(|e| e.to_string())?;
        let exact =
            exact_min_max(&universe, &required, required.len()).map_err(|e| e.to_string())?;
        let check = |label: &str, c: &Coverage| {
            c.validate(&universe, &required)
                .map_err(|v| format!("{label}: invalid cover: {v}"))
        };
        check("greedy", &greedy)?;
        check("exact", &exact)?;
        prop_assert!(
            greedy.max_share_len() >= exact.max_share_len(),
            "greedy max share {} beat the exact optimum {}",
            greedy.max_share_len(),
            exact.max_share_len()
        );
        Ok(())
    });
}

#[test]
fn divide_min_devices_never_beats_the_exact_minimum() {
    run_cases("dta_number_vs_exact", 48, |rng| {
        let (universe, required) = random_universe(rng);
        let greedy = divide_min_devices(&universe, &required).map_err(|e| e.to_string())?;
        let exact = exact_min_devices(&universe, &required, universe.num_devices())
            .map_err(|e| e.to_string())?;
        greedy
            .validate(&universe, &required)
            .map_err(|v| v.to_string())?;
        exact
            .validate(&universe, &required)
            .map_err(|v| v.to_string())?;
        prop_assert!(
            greedy.involved_devices() >= exact.involved_devices(),
            "greedy used {} devices, below the exact minimum {}",
            greedy.involved_devices(),
            exact.involved_devices()
        );
        Ok(())
    });
}
