//! Edge-case tests of the algorithm layer: empty-ish inputs, degenerate
//! clusters, extreme pressure, and report internals.

use dsmec_core::costs::CostTable;
use dsmec_core::dta::{divide_balanced, run_dta, DtaConfig};
use dsmec_core::hta::{AllToC, Hgos, HtaAlgorithm, LocalFirst, LpHta, RandomAssign};
use dsmec_core::metrics::{capacity_usage, evaluate_assignment};
use mec_sim::data::ItemSet;
use mec_sim::units::{Bytes, Seconds};
use mec_sim::workload::{DivisibleScenarioConfig, ScenarioConfig};

#[test]
fn one_task_system_works_for_every_algorithm() {
    let mut cfg = ScenarioConfig::paper_defaults(601);
    cfg.num_stations = 1;
    cfg.devices_per_station = 1;
    cfg.tasks_total = 1;
    let s = cfg.generate().unwrap();
    let costs = CostTable::build(&s.system, &s.tasks).unwrap();
    let algos: Vec<Box<dyn HtaAlgorithm>> = vec![
        Box::new(LpHta::paper()),
        Box::new(LpHta::paper().without_fast_path()),
        Box::new(Hgos::default()),
        Box::new(AllToC),
        Box::new(LocalFirst),
        Box::new(RandomAssign { seed: 1 }),
    ];
    for a in &algos {
        let out = a.assign(&s.system, &s.tasks, &costs).unwrap();
        assert_eq!(out.len(), 1, "{}", a.name());
        let m = evaluate_assignment(&s.tasks, &costs, &out).unwrap();
        assert!(m.total_energy.value() >= 0.0);
    }
}

#[test]
fn zero_capacity_devices_push_everything_off_device() {
    let mut cfg = ScenarioConfig::paper_defaults(602);
    cfg.tasks_total = 60;
    cfg.device_resource_mb = 1e-9; // effectively the paper's max_i = 0 case
    let s = cfg.generate().unwrap();
    let costs = CostTable::build(&s.system, &s.tasks).unwrap();
    let a = LpHta::paper().assign(&s.system, &s.tasks, &costs).unwrap();
    let [dev, _, _] = a.site_counts();
    assert_eq!(dev, 0, "Theorem-1's special case: devices do nothing");
    let usage = capacity_usage(&s.system, &s.tasks, &a).unwrap();
    assert!(usage.within_limits(&s.system, Bytes::new(1.0)));
}

#[test]
fn zero_station_capacity_reduces_to_device_or_cloud() {
    let mut cfg = ScenarioConfig::paper_defaults(603);
    cfg.tasks_total = 60;
    cfg.station_resource_mb = 1e-9;
    let s = cfg.generate().unwrap();
    let costs = CostTable::build(&s.system, &s.tasks).unwrap();
    let a = LpHta::paper().assign(&s.system, &s.tasks, &costs).unwrap();
    let [_, st, _] = a.site_counts();
    assert_eq!(st, 0);
}

#[test]
fn all_deadlines_infinite_yields_no_cancellations() {
    let mut s = ScenarioConfig::paper_defaults(604).generate().unwrap();
    for t in &mut s.tasks {
        t.deadline = Seconds::new(1e9);
    }
    let costs = CostTable::build(&s.system, &s.tasks).unwrap();
    let (a, r) = LpHta::paper()
        .assign_with_report(&s.system, &s.tasks, &costs)
        .unwrap();
    assert!(a.cancelled().is_empty());
    assert!(r.cancelled.is_empty());
    let m = evaluate_assignment(&s.tasks, &costs, &a).unwrap();
    assert_eq!(m.unsatisfied_rate, 0.0);
}

#[test]
fn dta_single_task_single_item() {
    let mut cfg = DivisibleScenarioConfig::paper_defaults(605);
    cfg.tasks_total = 1;
    cfg.items_per_task = (1, 1);
    let s = cfg.generate().unwrap();
    let r = run_dta(&s, DtaConfig::workload()).unwrap();
    assert_eq!(r.pieces.len(), 1);
    assert!(r.involved_devices >= 1);
    let required = s.required_universe();
    assert_eq!(required.len(), 1);
    let cov = divide_balanced(&s.universe, &required).unwrap();
    cov.validate(&s.universe, &required).unwrap();
    assert_eq!(cov.max_share_len(), 1);
}

#[test]
fn dta_empty_required_set_is_trivial() {
    let s = DivisibleScenarioConfig::paper_defaults(606)
        .generate()
        .unwrap();
    let empty = ItemSet::new(s.universe.num_items());
    let cov = divide_balanced(&s.universe, &empty).unwrap();
    assert_eq!(cov.involved_devices(), 0);
    assert_eq!(cov.max_share_len(), 0);
    cov.validate(&s.universe, &empty).unwrap();
}

#[test]
fn report_certificate_fields_have_documented_relationships() {
    let s = ScenarioConfig::paper_defaults(607).generate().unwrap();
    let costs = CostTable::build(&s.system, &s.tasks).unwrap();
    let (_, r) = LpHta::paper()
        .without_fast_path()
        .assign_with_report(&s.system, &s.tasks, &costs)
        .unwrap();
    assert!((r.theorem2_bound - (3.0 + r.delta / r.lp_objective)).abs() < 1e-9);
    assert_eq!(r.ratio_bound, r.theorem2_bound.min(r.corollary1_bound));
    assert!(r.corollary1_bound >= 1.0);
    assert!(r.lp_iterations > 0, "the LP actually ran");
}

#[test]
fn hgos_extreme_weights_are_clamped() {
    let s = ScenarioConfig::paper_defaults(608).generate().unwrap();
    let costs = CostTable::build(&s.system, &s.tasks).unwrap();
    for w in [-5.0, 0.0, 1.0, 42.0] {
        let a = Hgos { latency_weight: w }
            .assign(&s.system, &s.tasks, &costs)
            .unwrap();
        assert_eq!(a.len(), s.tasks.len());
        assert!(a.cancelled().is_empty());
    }
}
