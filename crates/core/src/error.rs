//! Error types for `dsmec-core`.

use std::error::Error;
use std::fmt;

/// Errors raised by the assignment algorithms.
#[derive(Debug)]
pub enum AssignError {
    /// The underlying MEC substrate rejected the input.
    Mec(mec_sim::MecError),
    /// The LP solver failed numerically.
    Lp(linprog::LpError),
    /// The instance is structurally unsolvable for this algorithm (e.g.
    /// exact search asked to assign more tasks than it supports).
    Unsupported {
        /// Which algorithm.
        algorithm: &'static str,
        /// Why the instance cannot be handled.
        reason: String,
    },
    /// Task and cost-table lengths disagree.
    LengthMismatch {
        /// Number of tasks supplied.
        tasks: usize,
        /// Number of entries in the other input.
        other: usize,
    },
    /// An item set handed to a division algorithm was built for a
    /// different universe: its item capacity disagrees with the
    /// universe's item count, so set operations against device holdings
    /// would be meaningless (previously an `ItemSet` assertion panic).
    UniverseMismatch {
        /// Which algorithm rejected the input.
        algorithm: &'static str,
        /// The universe's item count.
        expected: usize,
        /// The capacity of the offending set.
        found: usize,
    },
    /// A coverage's share count disagrees with the universe's device
    /// count — including the empty coverage, which previously made
    /// `rebalance` panic on `max_by_key`.
    CoverageMismatch {
        /// Devices in the universe.
        devices: usize,
        /// Shares in the coverage.
        shares: usize,
    },
    /// An index into a per-task parallel array (decisions, cost rows) was
    /// out of range — previously a slice-index panic reachable from
    /// repair call sites with truncated inputs.
    IndexOutOfRange {
        /// Which array was indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The array's length.
        len: usize,
    },
    /// A parallel worker panicked; carries the panic payload's message so
    /// the failure surfaces as an error instead of poisoning the run.
    Worker(String),
    /// An experiment driver received input it cannot average or sweep
    /// over (e.g. an empty seed list).
    InvalidInput(String),
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignError::Mec(e) => write!(f, "substrate error: {e}"),
            AssignError::Lp(e) => write!(f, "linear-programming error: {e}"),
            AssignError::Unsupported { algorithm, reason } => {
                write!(f, "{algorithm} cannot handle this instance: {reason}")
            }
            AssignError::LengthMismatch { tasks, other } => {
                write!(f, "length mismatch: {tasks} tasks vs {other} entries")
            }
            AssignError::UniverseMismatch {
                algorithm,
                expected,
                found,
            } => write!(
                f,
                "{algorithm}: item set capacity {found} does not match the \
                 universe's {expected} items"
            ),
            AssignError::CoverageMismatch { devices, shares } => write!(
                f,
                "coverage has {shares} shares for a universe of {devices} devices"
            ),
            AssignError::IndexOutOfRange { what, index, len } => {
                write!(f, "{what} index {index} out of range for length {len}")
            }
            AssignError::Worker(msg) => write!(f, "parallel worker panicked: {msg}"),
            AssignError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl Error for AssignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AssignError::Mec(e) => Some(e),
            AssignError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mec_sim::MecError> for AssignError {
    fn from(e: mec_sim::MecError) -> Self {
        AssignError::Mec(e)
    }
}

impl From<linprog::LpError> for AssignError {
    fn from(e: linprog::LpError) -> Self {
        AssignError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: AssignError = mec_sim::MecError::NoStations.into();
        assert!(e.to_string().contains("substrate"));
        let e: AssignError = linprog::LpError::NumericalFailure("boom").into();
        assert!(e.to_string().contains("linear-programming"));
        let e = AssignError::Unsupported {
            algorithm: "exact",
            reason: "too many tasks".into(),
        };
        assert!(e.to_string().contains("exact"));
        let e = AssignError::UniverseMismatch {
            algorithm: "data division",
            expected: 12,
            found: 6,
        };
        assert!(e.to_string().contains("does not match"));
        let e = AssignError::CoverageMismatch {
            devices: 5,
            shares: 0,
        };
        assert!(e.to_string().contains("0 shares"));
        let e = AssignError::Worker("index out of bounds".into());
        assert!(e.to_string().contains("worker panicked"));
        let e = AssignError::InvalidInput("empty seed list".into());
        assert!(e.to_string().contains("invalid input"));
    }
}
