//! Precomputed cost tables: `t_ijl`/`E_ijl` for every task × site, shared
//! by all assignment algorithms so the Section II formulas are evaluated
//! exactly once per scenario. Since the arena refactor (DESIGN.md §11)
//! the storage is a flat [`CostMatrix`] — two contiguous stride-3
//! `Vec<f64>`s — built through [`mec_sim::arena::ScenarioArena`] rows, so
//! pricing 10⁵ tasks is a cache-linear scan and chunked parallel builders
//! (see the bench layer) can assemble a table from independently priced
//! ranges.

use crate::error::AssignError;
use mec_sim::arena::ScenarioArena;
use mec_sim::cost::{CostMatrix, SiteCost, TaskCosts};
use mec_sim::task::{ExecutionSite, HolisticTask};
use mec_sim::topology::MecSystem;
use mec_sim::units::Seconds;

/// Cost of every task at every site, indexed like the task slice it was
/// built from.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTable {
    matrix: CostMatrix,
}

impl CostTable {
    /// Prices every task in `tasks` against `system`, serially. The
    /// bench layer's chunked parallel builder produces a bit-identical
    /// table via [`CostTable::from_matrix`].
    ///
    /// # Errors
    ///
    /// Propagates substrate errors (invalid tasks, unknown devices),
    /// first task first.
    pub fn build(system: &MecSystem, tasks: &[HolisticTask]) -> Result<CostTable, AssignError> {
        let _timer = mec_obs::span("cost/build");
        let arena = ScenarioArena::from_system(system)?;
        let matrix = CostMatrix::build(system, &arena, tasks)?;
        Ok(CostTable { matrix })
    }

    /// Wraps an already-built matrix (e.g. one assembled from parallel
    /// chunks) as a table.
    #[must_use]
    pub fn from_matrix(matrix: CostMatrix) -> CostTable {
        CostTable { matrix }
    }

    /// Number of priced tasks.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// True iff the table is empty.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// Full per-site costs of task `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range; use [`CostTable::try_task`] for
    /// indices that are not already validated.
    pub fn task(&self, idx: usize) -> TaskCosts {
        self.try_task(idx)
            .unwrap_or_else(|e| panic!("CostTable::task: {e}"))
    }

    /// Full per-site costs of task `idx`, with a typed error out of
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError::IndexOutOfRange`] when `idx` is not a row.
    pub fn try_task(&self, idx: usize) -> Result<TaskCosts, AssignError> {
        self.matrix
            .task_costs(idx)
            .ok_or(AssignError::IndexOutOfRange {
                what: "cost table",
                index: idx,
                len: self.len(),
            })
    }

    /// Cost of task `idx` at `site`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range; use [`CostTable::try_at`] for
    /// indices that are not already validated.
    pub fn at(&self, idx: usize, site: ExecutionSite) -> SiteCost {
        self.try_at(idx, site)
            .unwrap_or_else(|e| panic!("CostTable::at: {e}"))
    }

    /// Cost of task `idx` at `site`, with a typed error out of range.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError::IndexOutOfRange`] when `idx` is not a row.
    pub fn try_at(&self, idx: usize, site: ExecutionSite) -> Result<SiteCost, AssignError> {
        self.matrix
            .site(idx, site)
            .ok_or(AssignError::IndexOutOfRange {
                what: "cost table",
                index: idx,
                len: self.len(),
            })
    }

    /// Whether task `idx` meets `deadline` when run at `site`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn feasible(&self, idx: usize, site: ExecutionSite, deadline: Seconds) -> bool {
        self.at(idx, site).time <= deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_sim::cost::evaluate;
    use mec_sim::workload::ScenarioConfig;

    #[test]
    fn table_matches_direct_evaluation() {
        let s = ScenarioConfig::paper_defaults(2).generate().unwrap();
        let table = CostTable::build(&s.system, &s.tasks).unwrap();
        assert_eq!(table.len(), s.tasks.len());
        assert!(!table.is_empty());
        for (i, t) in s.tasks.iter().enumerate() {
            let direct = evaluate(&s.system, t).unwrap();
            for site in ExecutionSite::ALL {
                assert_eq!(table.at(i, site), direct.at(site));
                // Bit-identity of the arena path, not mere closeness.
                assert_eq!(
                    table.at(i, site).time.value().to_bits(),
                    direct.at(site).time.value().to_bits()
                );
                assert_eq!(
                    table.at(i, site).energy.value().to_bits(),
                    direct.at(site).energy.value().to_bits()
                );
            }
            assert_eq!(table.task(i), direct);
            assert!(table.feasible(i, ExecutionSite::Device, Seconds::new(f64::INFINITY)));
        }
    }

    #[test]
    fn build_rejects_invalid_tasks() {
        let s = ScenarioConfig::paper_defaults(2).generate().unwrap();
        let mut tasks = s.tasks.clone();
        tasks[0].deadline = Seconds::ZERO;
        assert!(CostTable::build(&s.system, &tasks).is_err());
    }

    #[test]
    fn out_of_range_access_is_typed_not_a_panic() {
        let s = ScenarioConfig::paper_defaults(2).generate().unwrap();
        let table = CostTable::build(&s.system, &s.tasks).unwrap();
        let n = table.len();
        let err = table.try_task(n).unwrap_err();
        assert!(
            matches!(err, AssignError::IndexOutOfRange { index, len, .. } if index == n && len == n),
            "{err}"
        );
        let err = table.try_at(n + 7, ExecutionSite::Cloud).unwrap_err();
        assert!(matches!(err, AssignError::IndexOutOfRange { .. }), "{err}");
        assert!(table.try_task(n - 1).is_ok());
        assert!(table.try_at(0, ExecutionSite::Device).is_ok());
    }
}
