//! Precomputed cost tables: `t_ijl`/`E_ijl` for every task × site, shared
//! by all assignment algorithms so the Section II formulas are evaluated
//! exactly once per scenario.

use crate::error::AssignError;
use mec_sim::cost::{evaluate, SiteCost, TaskCosts};
use mec_sim::task::{ExecutionSite, HolisticTask};
use mec_sim::topology::MecSystem;
use mec_sim::units::Seconds;

/// Cost of every task at every site, indexed like the task slice it was
/// built from.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTable {
    entries: Vec<TaskCosts>,
}

impl CostTable {
    /// Prices every task in `tasks` against `system`.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors (invalid tasks, unknown devices).
    pub fn build(system: &MecSystem, tasks: &[HolisticTask]) -> Result<CostTable, AssignError> {
        let entries = tasks
            .iter()
            .map(|t| evaluate(system, t))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CostTable { entries })
    }

    /// Number of priced tasks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Full per-site costs of task `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn task(&self, idx: usize) -> &TaskCosts {
        &self.entries[idx]
    }

    /// Cost of task `idx` at `site`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn at(&self, idx: usize, site: ExecutionSite) -> SiteCost {
        self.entries[idx].at(site)
    }

    /// Whether task `idx` meets `deadline` when run at `site`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn feasible(&self, idx: usize, site: ExecutionSite, deadline: Seconds) -> bool {
        self.at(idx, site).time <= deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_sim::workload::ScenarioConfig;

    #[test]
    fn table_matches_direct_evaluation() {
        let s = ScenarioConfig::paper_defaults(2).generate().unwrap();
        let table = CostTable::build(&s.system, &s.tasks).unwrap();
        assert_eq!(table.len(), s.tasks.len());
        assert!(!table.is_empty());
        for (i, t) in s.tasks.iter().enumerate() {
            let direct = evaluate(&s.system, t).unwrap();
            for site in ExecutionSite::ALL {
                assert_eq!(table.at(i, site), direct.at(site));
            }
            assert!(table.feasible(i, ExecutionSite::Device, Seconds::new(f64::INFINITY)));
        }
    }

    #[test]
    fn build_rejects_invalid_tasks() {
        let s = ScenarioConfig::paper_defaults(2).generate().unwrap();
        let mut tasks = s.tasks.clone();
        tasks[0].deadline = Seconds::ZERO;
        assert!(CostTable::build(&s.system, &tasks).is_err());
    }
}
