//! Replanning for tasks stranded by injected faults.
//!
//! The fault plane (`mec_sim::sim::fault`) kills tasks inside the
//! discrete-event executor; this module is the control loop above it that
//! detects the strandings and replans, in *waves*:
//!
//! 1. the wave's tasks run under [`simulate_chaos_with_arrivals`];
//! 2. every failure is classified — **transient** (link outage) tasks
//!    retry at the same site after an exponential backoff; **permanent**
//!    (device dropout) tasks are abandoned when the dead device is the
//!    task's *owner* (the user who must receive the result is gone),
//!    re-sourced to the lowest-id live device when it was the shared-data
//!    *source*, and moved to a cheaper feasible site — ultimately the
//!    cloud, whose resources the paper treats as unconstrained — when
//!    their current site no longer fits the remaining deadline;
//! 3. reassignments that would overflow a station's residual capacity go
//!    through the same [`repair_capacity`] machinery LP-HTA uses for its
//!    Steps 5–6, with cloud as the relief valve;
//! 4. the next wave re-releases the replanned tasks at their backoff
//!    times.
//!
//! Simplification, documented as part of the determinism contract
//! (DESIGN.md §8): each wave replays only the stranded tasks, so retried
//! work does not re-contend with work that already completed in an
//! earlier wave — repairs happen in the tail of the schedule, where the
//! paper's quasi-static assumption (Section II) holds.
//!
//! Every decision lands in an ordered [`RepairEvent`] list whose
//! [`ChaosRunReport::fingerprint`] is a pure function of
//! `(system, tasks, assignment, plan, policy)` — the property the
//! cross-thread determinism test in `tests/chaos.rs` pins down. No task
//! is ever silently dropped: every input task reports exactly one
//! [`TaskFate`].

use crate::assignment::{Assignment, Decision};
use crate::costs::CostTable;
use crate::dta::Coverage;
use crate::error::AssignError;
use crate::hta::lp_hta::repair_capacity;
use mec_sim::data::{DataUniverse, ItemSet, OwnersIndex};
use mec_sim::sim::{
    simulate_chaos_with_arrivals, ChaosOutcome, Contention, FaultHit, FaultHitKind, FaultPlan,
};
use mec_sim::task::{ExecutionSite, HolisticTask, TaskId};
use mec_sim::topology::{DeviceId, MecSystem};
use mec_sim::units::{Joules, Seconds};

/// Retry/backoff knobs of the repair loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairPolicy {
    /// Maximum retries after transient (link-outage) failures.
    pub max_retries: u32,
    /// First backoff delay; doubles every retry.
    pub backoff: Seconds,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        RepairPolicy {
            max_retries: 3,
            backoff: Seconds::new(0.05),
        }
    }
}

/// Why a task was given up on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbandonReason {
    /// The assignment algorithm itself cancelled the task (paper Steps
    /// 4–6); reported explicitly so chaos runs account for every task.
    CancelledAtAssignment,
    /// Transient failures persisted past [`RepairPolicy::max_retries`].
    RetriesExhausted,
    /// The task's owner device died; nobody is left to receive results.
    OwnerLost,
    /// The shared-data source died and no live device can replace it.
    DataLost,
    /// Capacity repair had to cancel the task (no feasible site).
    NoFeasibleSite,
}

/// One replanning decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepairAction {
    /// Retry at the same site after backoff.
    Retry {
        /// Retry number (1-based).
        attempt: u32,
        /// Release time of the retry.
        at: Seconds,
    },
    /// The shared-data source was replaced.
    Resourced {
        /// The replacement source device.
        new_source: DeviceId,
        /// Site the task will (re)run at.
        site: ExecutionSite,
    },
    /// The task was moved to another site.
    Reassigned {
        /// Site it failed at.
        from: ExecutionSite,
        /// Site it will run at.
        to: ExecutionSite,
    },
    /// The task was given up on.
    Abandoned(AbandonReason),
}

/// One entry of the ordered repair log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairEvent {
    /// The task the decision concerns.
    pub task: TaskId,
    /// Simulated time of the triggering failure (zero for
    /// assignment-time cancellations).
    pub time: Seconds,
    /// The fault that triggered the decision, if any.
    pub hit: Option<FaultHit>,
    /// What the repair loop decided.
    pub action: RepairAction,
}

/// Final fate of one task under faults and repair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskFate {
    /// The task finished.
    Completed {
        /// Wall-clock completion time (on the wave timeline).
        completion: Seconds,
        /// `completion − original arrival` — includes all failed
        /// attempts and backoff waits.
        sojourn: Seconds,
        /// Whether the sojourn met the task's original deadline.
        met_deadline: bool,
        /// Whether any repair action was needed along the way.
        recovered: bool,
    },
    /// The task was explicitly given up on.
    Failed {
        /// Why.
        reason: AbandonReason,
        /// The last fault that struck it, if any.
        last_hit: Option<FaultHit>,
    },
}

/// Outcome of one task across all waves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRepairResult {
    /// Task identifier.
    pub id: TaskId,
    /// Final site (None when never runnable).
    pub site: Option<ExecutionSite>,
    /// Energy across every attempt, failed ones included.
    pub energy: Joules,
    /// Transient retries consumed.
    pub attempts: u32,
    /// How it ended.
    pub fate: TaskFate,
}

/// Aggregate outcome of a chaos run with repair.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRunReport {
    /// Per-task outcomes, parallel to the input task list.
    pub results: Vec<TaskRepairResult>,
    /// Ordered repair log (wave by wave, input order inside a wave).
    pub events: Vec<RepairEvent>,
    /// Number of simulation waves run.
    pub waves: u32,
}

impl ChaosRunReport {
    /// Tasks that finished.
    pub fn completed(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.fate, TaskFate::Completed { .. }))
            .count()
    }

    /// Tasks explicitly failed.
    pub fn failed(&self) -> usize {
        self.results.len() - self.completed()
    }

    /// Total energy across all attempts of all tasks.
    pub fn total_energy(&self) -> Joules {
        self.results.iter().map(|r| r.energy).sum()
    }

    /// A compact, order-sensitive rendering of the repair log — equal
    /// fingerprints mean the same fault/repair event sequence. Used by
    /// the `--threads 1` vs `--threads N` determinism oracle.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let hit = match e.hit {
                Some(h) => format!("{:?}@{}", h.kind, h.time),
                None => "-".to_string(),
            };
            out.push_str(&format!("{}:{}:{:?};", e.task, hit, e.action));
        }
        out
    }
}

/// One stranded task awaiting the next wave.
#[derive(Debug, Clone, Copy)]
struct Pending {
    idx: usize,
    site: ExecutionSite,
    release: Seconds,
}

/// Runs `assignment` under `plan`, replanning stranded tasks per
/// `policy` until every task either completes or is explicitly
/// abandoned. See the module docs for the wave semantics.
///
/// # Errors
///
/// Propagates substrate errors (plan building, cost evaluation); per-task
/// infeasibility is expressed in the report, never as an error.
pub fn execute_with_repair(
    system: &MecSystem,
    tasks: &[HolisticTask],
    assignment: &Assignment,
    contention: Contention,
    plan: &FaultPlan,
    policy: &RepairPolicy,
) -> Result<ChaosRunReport, AssignError> {
    let _span = mec_obs::span("chaos/repair");
    if tasks.len() != assignment.len() {
        return Err(AssignError::LengthMismatch {
            tasks: tasks.len(),
            other: assignment.len(),
        });
    }
    let dead = plan.dying_devices();
    // Working copies: sources may be rewritten by repair.
    let mut current: Vec<HolisticTask> = tasks.to_vec();
    let mut results: Vec<Option<TaskRepairResult>> = vec![None; tasks.len()];
    let mut events: Vec<RepairEvent> = Vec::new();
    let mut attempts: Vec<u32> = vec![0; tasks.len()];
    let mut energy: Vec<f64> = vec![0.0; tasks.len()];
    let mut recovered: Vec<bool> = vec![false; tasks.len()];

    let mut pending: Vec<Pending> = Vec::new();
    for (idx, d) in assignment.decisions().iter().enumerate() {
        match d {
            Decision::Assigned(site) => pending.push(Pending {
                idx,
                site: *site,
                release: Seconds::ZERO,
            }),
            Decision::Cancelled => {
                // Explicit, never silent: assignment-time cancellations
                // appear in the report like any other failure.
                events.push(RepairEvent {
                    task: tasks[idx].id,
                    time: Seconds::ZERO,
                    hit: None,
                    action: RepairAction::Abandoned(AbandonReason::CancelledAtAssignment),
                });
                results[idx] = Some(TaskRepairResult {
                    id: tasks[idx].id,
                    site: None,
                    energy: Joules::ZERO,
                    attempts: 0,
                    fate: TaskFate::Failed {
                        reason: AbandonReason::CancelledAtAssignment,
                        last_hit: None,
                    },
                });
            }
        }
    }

    let abandon = |idx: usize,
                   site: ExecutionSite,
                   hit: Option<FaultHit>,
                   reason: AbandonReason,
                   results: &mut Vec<Option<TaskRepairResult>>,
                   events: &mut Vec<RepairEvent>,
                   energy: &[f64],
                   attempts: &[u32],
                   tasks: &[HolisticTask]| {
        mec_obs::counter_add("chaos/repair/abandoned", 1);
        events.push(RepairEvent {
            task: tasks[idx].id,
            time: hit.map_or(Seconds::ZERO, |h| h.time),
            hit,
            action: RepairAction::Abandoned(reason),
        });
        results[idx] = Some(TaskRepairResult {
            id: tasks[idx].id,
            site: Some(site),
            energy: Joules::new(energy[idx]),
            attempts: attempts[idx],
            fate: TaskFate::Failed {
                reason,
                last_hit: hit,
            },
        });
    };

    // Every wave either completes a task, abandons it, or consumes one of
    // its bounded repair tokens (≤ max_retries retries + one re-source +
    // one reassignment), so this cap is never the deciding factor — it is
    // a backstop against future edits breaking that argument. Saturating:
    // an adversarial max_retries near u32::MAX must not wrap the cap to a
    // tiny value and abandon everything on wave one.
    let max_waves = policy.max_retries.saturating_add(4);
    let mut waves = 0u32;
    while !pending.is_empty() {
        if waves >= max_waves {
            for p in pending.drain(..) {
                abandon(
                    p.idx,
                    p.site,
                    None,
                    AbandonReason::RetriesExhausted,
                    &mut results,
                    &mut events,
                    &energy,
                    &attempts,
                    tasks,
                );
            }
            break;
        }
        waves += 1;
        let arrivals: Vec<(HolisticTask, ExecutionSite, Seconds)> = pending
            .iter()
            .map(|p| (current[p.idx], p.site, p.release))
            .collect();
        let report = simulate_chaos_with_arrivals(system, &arrivals, contention, plan)
            .map_err(AssignError::Mec)?;

        let wave: Vec<Pending> = std::mem::take(&mut pending);
        // Residual station capacity for this wave's reassignments: what
        // unaffected (non-wave, non-failed) tasks have not claimed.
        // Dense membership mask over task indices (was a `BTreeSet`).
        let mut in_wave = vec![false; tasks.len()];
        for p in &wave {
            in_wave[p.idx] = true;
        }
        let costs = CostTable::build(system, &current)?;

        // Classify every wave task; collect reassignment candidates for
        // the capacity pass.
        let mut moved: Vec<(usize, ExecutionSite)> = Vec::new();
        for (p, r) in wave.iter().zip(report.results.iter()) {
            let idx = p.idx;
            energy[idx] += r.energy.value();
            match r.outcome {
                ChaosOutcome::Completed { completion, .. } => {
                    // Sojourn and deadline are re-derived against the
                    // ORIGINAL arrival (zero), not the retry release.
                    let sojourn = completion; // original arrival is 0
                    results[idx] = Some(TaskRepairResult {
                        id: tasks[idx].id,
                        site: Some(p.site),
                        energy: Joules::new(energy[idx]),
                        attempts: attempts[idx],
                        fate: TaskFate::Completed {
                            completion,
                            sojourn,
                            met_deadline: sojourn <= tasks[idx].deadline,
                            recovered: recovered[idx],
                        },
                    });
                }
                ChaosOutcome::Failed(hit) => {
                    recovered[idx] = true;
                    match hit.kind {
                        FaultHitKind::LinkOutage(_) => {
                            if attempts[idx] < policy.max_retries {
                                attempts[idx] += 1;
                                // Exponential backoff with a saturated
                                // exponent: `1u32 << (attempts - 1)`
                                // overflows once attempts exceeds 32,
                                // which an adversarial max_retries makes
                                // reachable (debug panic, masked shift in
                                // release). 2^60 seconds already exceeds
                                // any horizon, so capping keeps the
                                // schedule finite and monotone.
                                let exponent = (attempts[idx] - 1).min(60);
                                let backoff = policy.backoff * 2f64.powi(exponent as i32);
                                let at = hit.time + backoff;
                                mec_obs::counter_add("chaos/repair/retries", 1);
                                events.push(RepairEvent {
                                    task: tasks[idx].id,
                                    time: hit.time,
                                    hit: Some(hit),
                                    action: RepairAction::Retry {
                                        attempt: attempts[idx],
                                        at,
                                    },
                                });
                                pending.push(Pending {
                                    idx,
                                    site: p.site,
                                    release: at,
                                });
                            } else {
                                abandon(
                                    idx,
                                    p.site,
                                    Some(hit),
                                    AbandonReason::RetriesExhausted,
                                    &mut results,
                                    &mut events,
                                    &energy,
                                    &attempts,
                                    tasks,
                                );
                            }
                        }
                        FaultHitKind::DeviceLost(lost) => {
                            if lost == tasks[idx].owner {
                                abandon(
                                    idx,
                                    p.site,
                                    Some(hit),
                                    AbandonReason::OwnerLost,
                                    &mut results,
                                    &mut events,
                                    &energy,
                                    &attempts,
                                    tasks,
                                );
                                continue;
                            }
                            // The dead device must be the shared-data
                            // source: find the lowest-id live replacement.
                            let replacement = system
                                .devices()
                                .iter()
                                .map(|d| d.id)
                                .find(|d| *d != tasks[idx].owner && !dead.contains(d));
                            let Some(new_source) = replacement else {
                                abandon(
                                    idx,
                                    p.site,
                                    Some(hit),
                                    AbandonReason::DataLost,
                                    &mut results,
                                    &mut events,
                                    &energy,
                                    &attempts,
                                    tasks,
                                );
                                continue;
                            };
                            current[idx].external_source = Some(new_source);
                            // Site choice against the REMAINING deadline:
                            // keep the current site if it still fits,
                            // else the cheapest fitting site, else cloud
                            // (runs and reports its miss — explicit, not
                            // dropped).
                            let task_costs =
                                CostTable::build(system, std::slice::from_ref(&current[idx]))?;
                            let remaining = tasks[idx].deadline - hit.time;
                            let fits =
                                |site: ExecutionSite| task_costs.at(0, site).time <= remaining;
                            let site = if fits(p.site) {
                                p.site
                            } else {
                                ExecutionSite::ALL
                                    .into_iter()
                                    .filter(|s| fits(*s))
                                    .min_by(|a, b| {
                                        task_costs
                                            .at(0, *a)
                                            .energy
                                            .value()
                                            .total_cmp(&task_costs.at(0, *b).energy.value())
                                    })
                                    .unwrap_or(ExecutionSite::Cloud)
                            };
                            mec_obs::counter_add("chaos/repair/resourced", 1);
                            events.push(RepairEvent {
                                task: tasks[idx].id,
                                time: hit.time,
                                hit: Some(hit),
                                action: RepairAction::Resourced { new_source, site },
                            });
                            if site != p.site {
                                mec_obs::counter_add("chaos/repair/reassignments", 1);
                                events.push(RepairEvent {
                                    task: tasks[idx].id,
                                    time: hit.time,
                                    hit: Some(hit),
                                    action: RepairAction::Reassigned {
                                        from: p.site,
                                        to: site,
                                    },
                                });
                            }
                            if site == ExecutionSite::Station {
                                moved.push((idx, site));
                            }
                            pending.push(Pending {
                                idx,
                                site,
                                release: hit.time,
                            });
                        }
                    }
                }
            }
        }

        // Capacity pass: tasks replanned onto their station must fit the
        // capacity that unaffected tasks left behind, per cluster.
        // LP-HTA's Step-6 machinery migrates the overflow to the cloud
        // (never cancels there: cloud capacity is unconstrained).
        if !moved.is_empty() {
            for station in system.stations() {
                let committed: f64 = (0..tasks.len())
                    .filter(|&i| !in_wave[i])
                    .filter(|&i| {
                        assignment.decision(i) == Decision::Assigned(ExecutionSite::Station)
                            && system.device(tasks[i].owner).map(|d| d.station) == Ok(station.id)
                    })
                    .map(|i| tasks[i].resource.value())
                    .sum();
                let residual =
                    mec_sim::units::Bytes::new((station.max_resource.value() - committed).max(0.0));
                let idxs: Vec<usize> = moved.iter().map(|&(i, _)| i).collect();
                let mut sites: Vec<Option<ExecutionSite>> =
                    moved.iter().map(|&(_, s)| Some(s)).collect();
                repair_capacity(
                    &current,
                    &costs,
                    &idxs,
                    &mut sites,
                    ExecutionSite::Station,
                    ExecutionSite::Cloud,
                    residual,
                    |idx| system.device(current[idx].owner).map(|d| d.station) == Ok(station.id),
                );
                for (k, &idx) in idxs.iter().enumerate() {
                    let Some(p) = pending.iter_mut().find(|p| p.idx == idx) else {
                        continue;
                    };
                    match sites[k] {
                        Some(site) if site != p.site => {
                            mec_obs::counter_add("chaos/repair/reassignments", 1);
                            events.push(RepairEvent {
                                task: tasks[idx].id,
                                time: p.release,
                                hit: None,
                                action: RepairAction::Reassigned {
                                    from: p.site,
                                    to: site,
                                },
                            });
                            p.site = site;
                        }
                        Some(_) => {}
                        None => {
                            let site = p.site;
                            let release = p.release;
                            pending.retain(|q| q.idx != idx);
                            abandon(
                                idx,
                                site,
                                None,
                                AbandonReason::NoFeasibleSite,
                                &mut results,
                                &mut events,
                                &energy,
                                &attempts,
                                tasks,
                            );
                            let _ = release;
                        }
                    }
                }
            }
        }
    }

    let results: Vec<TaskRepairResult> = results
        .into_iter()
        .enumerate()
        .map(|(idx, r)| {
            // Structurally guaranteed: every pending task either completes
            // or is abandoned above. Belt-and-braces for future edits.
            r.unwrap_or(TaskRepairResult {
                id: tasks[idx].id,
                site: None,
                energy: Joules::new(energy[idx]),
                attempts: attempts[idx],
                fate: TaskFate::Failed {
                    reason: AbandonReason::RetriesExhausted,
                    last_hit: None,
                },
            })
        })
        .collect();
    Ok(ChaosRunReport {
        results,
        events,
        waves,
    })
}

/// Re-derives a DTA coverage after `dead` devices dropped: their shares
/// are redistributed to live owners of the same items (smallest current
/// share first, lowest device id on ties), keeping the Section IV
/// conditions intact.
///
/// # Errors
///
/// * [`AssignError::CoverageMismatch`] when the coverage's share count
///   disagrees with the universe;
/// * [`AssignError::Unsupported`] when some required item was held ONLY
///   by dead devices — the data is gone and the division must be
///   reported failed, not silently shrunk;
/// * [`AssignError::InvalidInput`] when the repaired coverage fails
///   validation (a malformed input coverage).
pub fn repair_coverage(
    universe: &DataUniverse,
    required: &ItemSet,
    coverage: &Coverage,
    dead: &[DeviceId],
) -> Result<Coverage, AssignError> {
    let _span = mec_obs::span("chaos/repair_coverage");
    if coverage.shares().len() != universe.num_devices() {
        return Err(AssignError::CoverageMismatch {
            devices: universe.num_devices(),
            shares: coverage.shares().len(),
        });
    }
    // Dense dead mask (was a `BTreeSet`). Out-of-range dead ids cannot
    // hold a share or inherit items, so clamping them out of the mask
    // preserves the set-based behavior.
    let mut is_dead = vec![false; universe.num_devices()];
    for d in dead {
        if d.0 < is_dead.len() {
            is_dead[d.0] = true;
        }
    }
    let mut shares: Vec<ItemSet> = coverage.shares().to_vec();
    let mut orphaned = ItemSet::new(universe.num_items());
    for (i, &dead_now) in is_dead.iter().enumerate() {
        if dead_now {
            orphaned.union_with(&shares[i]);
            shares[i] = ItemSet::new(universe.num_items());
        }
    }
    let owners = OwnersIndex::build(universe)?;
    for item in orphaned.iter() {
        let heir = owners
            .owners(item)
            .iter()
            .map(|&d| DeviceId(d as usize))
            .filter(|d| !is_dead[d.0])
            .min_by_key(|d| (shares[d.0].len(), d.0));
        match heir {
            Some(d) => {
                shares[d.0].insert(item);
                mec_obs::counter_add("chaos/repair/reassigned_items", 1);
            }
            None => {
                return Err(AssignError::Unsupported {
                    algorithm: "coverage repair",
                    reason: format!("required item {item} was held only by dead devices"),
                });
            }
        }
    }
    let repaired = Coverage::new(shares);
    repaired
        .validate(universe, required)
        .map_err(|v| AssignError::InvalidInput(format!("repaired coverage invalid: {v}")))?;
    Ok(repaired)
}

// JSON codecs so chaos reports land in CHAOS_report.json verbatim.
djson::impl_json_struct!(RepairPolicy {
    max_retries,
    backoff
});
djson::impl_json_enum!(AbandonReason {
    CancelledAtAssignment,
    RetriesExhausted,
    OwnerLost,
    DataLost,
    NoFeasibleSite,
});
djson::impl_json_enum!(RepairAction {
    Retry { attempt: u32, at: Seconds },
    Resourced {
        new_source: DeviceId,
        site: ExecutionSite
    },
    Reassigned {
        from: ExecutionSite,
        to: ExecutionSite
    },
    Abandoned(AbandonReason),
});
djson::impl_json_struct!(RepairEvent {
    task,
    time,
    hit,
    action
});
djson::impl_json_enum!(TaskFate {
    Completed {
        completion: Seconds,
        sojourn: Seconds,
        met_deadline: bool,
        recovered: bool
    },
    Failed {
        reason: AbandonReason,
        last_hit: Option<FaultHit>
    },
});
djson::impl_json_struct!(TaskRepairResult {
    id,
    site,
    energy,
    attempts,
    fate
});
djson::impl_json_struct!(ChaosRunReport {
    results,
    events,
    waves
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hta::{HtaAlgorithm, LpHta};
    use mec_sim::data::DataItemId;
    use mec_sim::radio::NetworkProfile;
    use mec_sim::sim::{Fault, Window};
    use mec_sim::topology::Cloud;
    use mec_sim::units::{Bytes, Hertz};
    use mec_sim::workload::ScenarioConfig;

    fn small_system(n: usize) -> MecSystem {
        let mut b = MecSystem::builder(Cloud {
            cpu: Hertz::from_ghz(2.4),
        });
        let st = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(200.0));
        for _ in 0..n {
            b.add_device(
                st,
                Hertz::from_ghz(1.0),
                NetworkProfile::WiFi.link(),
                Bytes::from_mb(8.0),
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    fn task(index: usize, owner: usize, source: Option<usize>) -> HolisticTask {
        HolisticTask {
            id: TaskId { user: owner, index },
            owner: DeviceId(owner),
            local_size: Bytes::from_kb(1000.0),
            external_size: if source.is_some() {
                Bytes::from_kb(500.0)
            } else {
                Bytes::ZERO
            },
            external_source: source.map(DeviceId),
            complexity: 1.0,
            resource: Bytes::from_kb(1000.0),
            deadline: Seconds::new(30.0),
        }
    }

    fn window(from: f64, until: f64) -> Window {
        Window {
            from: Seconds::new(from),
            until: Seconds::new(until),
        }
    }

    /// A decisions vector shorter than the task list must surface as a
    /// typed error from the length gate, never as a slice-index panic in
    /// the wave loop.
    #[test]
    fn truncated_decisions_vector_is_a_typed_error() {
        let s = ScenarioConfig::paper_defaults(11).generate().unwrap();
        let truncated = Assignment::uniform(s.tasks.len() - 3, ExecutionSite::Device);
        let err = execute_with_repair(
            &s.system,
            &s.tasks,
            &truncated,
            Contention::Exclusive,
            &FaultPlan::default(),
            &RepairPolicy::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, AssignError::LengthMismatch { tasks, other }
                if tasks == s.tasks.len() && other == s.tasks.len() - 3),
            "{err}"
        );
    }

    #[test]
    fn fault_free_run_completes_everything_without_repair() {
        let s = ScenarioConfig::paper_defaults(11).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let assignment = LpHta::paper().assign(&s.system, &s.tasks, &costs).unwrap();
        let report = execute_with_repair(
            &s.system,
            &s.tasks,
            &assignment,
            Contention::Exclusive,
            &FaultPlan::none(),
            &RepairPolicy::default(),
        )
        .unwrap();
        assert_eq!(report.waves, 1);
        assert_eq!(report.results.len(), s.tasks.len());
        for (r, d) in report.results.iter().zip(assignment.decisions()) {
            match d {
                Decision::Assigned(_) => assert!(
                    matches!(
                        r.fate,
                        TaskFate::Completed {
                            recovered: false,
                            ..
                        }
                    ),
                    "{}: {:?}",
                    r.id,
                    r.fate
                ),
                Decision::Cancelled => assert!(matches!(
                    r.fate,
                    TaskFate::Failed {
                        reason: AbandonReason::CancelledAtAssignment,
                        ..
                    }
                )),
            }
        }
        // Only assignment-time cancellations may appear in the log.
        assert!(report
            .events
            .iter()
            .all(|e| e.action == RepairAction::Abandoned(AbandonReason::CancelledAtAssignment)));
    }

    #[test]
    fn transient_outage_is_retried_with_backoff_until_the_window_passes() {
        let system = small_system(1);
        let tasks = vec![task(0, 0, None)];
        let assignment = Assignment::uniform(1, ExecutionSite::Station);
        // Outage covers t=0; first retry at 0.05 still inside; the
        // doubled second retry at 0.05+0.1 lands outside and succeeds.
        let faults = FaultPlan::new(
            &system,
            vec![Fault::LinkOutage {
                device: DeviceId(0),
                window: window(0.0, 0.1),
            }],
        )
        .unwrap();
        let report = execute_with_repair(
            &system,
            &tasks,
            &assignment,
            Contention::Exclusive,
            &faults,
            &RepairPolicy::default(),
        )
        .unwrap();
        let r = &report.results[0];
        assert_eq!(r.attempts, 2, "{:?}", report.events);
        assert!(matches!(
            r.fate,
            TaskFate::Completed {
                recovered: true,
                ..
            }
        ));
        // Both failed attempts cost nothing (the upload never started),
        // so total energy equals one clean run's.
        let retries = report
            .events
            .iter()
            .filter(|e| matches!(e.action, RepairAction::Retry { .. }))
            .count();
        assert_eq!(retries, 2);
        assert_eq!(report.waves, 3);
    }

    #[test]
    fn persistent_outage_exhausts_retries_explicitly() {
        let system = small_system(1);
        let tasks = vec![task(0, 0, None)];
        let assignment = Assignment::uniform(1, ExecutionSite::Station);
        let faults = FaultPlan::new(
            &system,
            vec![Fault::LinkOutage {
                device: DeviceId(0),
                window: window(0.0, 1e6),
            }],
        )
        .unwrap();
        let report = execute_with_repair(
            &system,
            &tasks,
            &assignment,
            Contention::Exclusive,
            &faults,
            &RepairPolicy::default(),
        )
        .unwrap();
        assert!(matches!(
            report.results[0].fate,
            TaskFate::Failed {
                reason: AbandonReason::RetriesExhausted,
                last_hit: Some(_),
            }
        ));
        assert_eq!(report.results[0].attempts, 3);
    }

    #[test]
    fn adversarial_max_retries_saturates_backoff_and_wave_cap() {
        let system = small_system(1);
        let tasks = vec![task(0, 0, None)];
        let assignment = Assignment::uniform(1, ExecutionSite::Station);
        // An outage long enough that the doubled backoff must clear 2^32
        // multiples before a retry lands outside it: the old multiplier
        // `1u32 << (attempts - 1)` overflowed at attempt 33 (debug panic,
        // masked shift in release), and the old wave cap
        // `max_retries + 4` wrapped for max_retries near u32::MAX.
        let faults = FaultPlan::new(
            &system,
            vec![Fault::LinkOutage {
                device: DeviceId(0),
                window: window(0.0, 1e9),
            }],
        )
        .unwrap();
        let policy = RepairPolicy {
            max_retries: u32::MAX,
            backoff: Seconds::new(0.05),
        };
        let report = execute_with_repair(
            &system,
            &tasks,
            &assignment,
            Contention::Exclusive,
            &faults,
            &policy,
        )
        .unwrap();
        let r = &report.results[0];
        assert!(
            matches!(
                r.fate,
                TaskFate::Completed {
                    recovered: true,
                    ..
                }
            ),
            "{:?}",
            r.fate
        );
        assert!(
            r.attempts > 32,
            "must push past the old shift-overflow point, got {} attempts",
            r.attempts
        );
        // Every scheduled retry stayed finite and monotone.
        let mut last = f64::NEG_INFINITY;
        for e in &report.events {
            if let RepairAction::Retry { at, .. } = e.action {
                assert!(at.value().is_finite(), "{:?}", e);
                assert!(at.value() >= last, "retry times must be monotone");
                last = at.value();
            }
        }
    }

    #[test]
    fn owner_dropout_abandons_but_source_dropout_resources() {
        let system = small_system(3);
        // Task 0: owner 0, source 2 (source will die → re-sourced to 1).
        // Task 1: owner 2 (owner dies → abandoned).
        let tasks = vec![task(0, 0, Some(2)), task(1, 2, None)];
        let assignment = Assignment::uniform(2, ExecutionSite::Station);
        let faults = FaultPlan::new(
            &system,
            vec![Fault::Dropout {
                device: DeviceId(2),
                at: Seconds::ZERO,
            }],
        )
        .unwrap();
        let report = execute_with_repair(
            &system,
            &tasks,
            &assignment,
            Contention::Exclusive,
            &faults,
            &RepairPolicy::default(),
        )
        .unwrap();
        assert!(matches!(
            report.results[0].fate,
            TaskFate::Completed {
                recovered: true,
                ..
            }
        ));
        assert!(report.events.iter().any(|e| matches!(
            e.action,
            RepairAction::Resourced {
                new_source: DeviceId(1),
                ..
            }
        )));
        assert!(matches!(
            report.results[1].fate,
            TaskFate::Failed {
                reason: AbandonReason::OwnerLost,
                last_hit: Some(FaultHit {
                    kind: FaultHitKind::DeviceLost(DeviceId(2)),
                    ..
                }),
            }
        ));
    }

    #[test]
    fn source_dropout_with_no_live_replacement_is_data_lost() {
        let system = small_system(2);
        let tasks = vec![task(0, 0, Some(1))];
        let assignment = Assignment::uniform(1, ExecutionSite::Station);
        let faults = FaultPlan::new(
            &system,
            vec![Fault::Dropout {
                device: DeviceId(1),
                at: Seconds::ZERO,
            }],
        )
        .unwrap();
        let report = execute_with_repair(
            &system,
            &tasks,
            &assignment,
            Contention::Exclusive,
            &faults,
            &RepairPolicy::default(),
        )
        .unwrap();
        assert!(matches!(
            report.results[0].fate,
            TaskFate::Failed {
                reason: AbandonReason::DataLost,
                ..
            }
        ));
    }

    #[test]
    fn repair_is_deterministic_and_reports_round_trip() {
        let s = ScenarioConfig::paper_defaults(21).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let assignment = LpHta::paper().assign(&s.system, &s.tasks, &costs).unwrap();
        let faults = mec_sim::sim::ChaosConfig::from_seed(0xC0FFEE)
            .generate(&s.system, Seconds::new(10.0))
            .unwrap();
        let run = || {
            execute_with_repair(
                &s.system,
                &s.tasks,
                &assignment,
                Contention::Exclusive,
                &faults,
                &RepairPolicy::default(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.completed() + a.failed(), s.tasks.len());
        let json = djson::to_string(&a);
        let back: ChaosRunReport = djson::from_str(&json).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn coverage_repair_redistributes_dead_shares_to_live_owners() {
        // Items 0..4; device 0 owns {0,1,2}, device 1 owns {2,3}, device
        // 2 owns {1,3}.
        let sizes = vec![Bytes::from_kb(10.0); 4];
        let ids = |v: &[usize]| {
            let v = v.to_vec();
            ItemSet::from_ids(4, v.into_iter().map(DataItemId))
        };
        let holdings = vec![ids(&[0, 1, 2]), ids(&[2, 3]), ids(&[1, 3])];
        let universe = DataUniverse::new(sizes, holdings).unwrap();
        let required = ItemSet::full(4);
        let coverage = Coverage::new(vec![ids(&[0, 2]), ids(&[3]), ids(&[1])]);
        coverage.validate(&universe, &required).unwrap();

        // Device 1 dies: its item 3 must move to device 2 (the only live
        // owner of 3).
        let repaired = repair_coverage(&universe, &required, &coverage, &[DeviceId(1)]).unwrap();
        repaired.validate(&universe, &required).unwrap();
        assert!(repaired.share(DeviceId(1)).is_empty());
        assert!(repaired.share(DeviceId(2)).contains(DataItemId(3)));

        // Devices 0 AND 2 die: item 0 has no live owner left.
        let err = repair_coverage(&universe, &required, &coverage, &[DeviceId(0), DeviceId(2)])
            .unwrap_err();
        assert!(matches!(err, AssignError::Unsupported { .. }), "{err}");

        // Malformed: share count disagrees with the universe.
        let bad = Coverage::new(vec![ids(&[0])]);
        assert!(matches!(
            repair_coverage(&universe, &required, &bad, &[]),
            Err(AssignError::CoverageMismatch { .. })
        ));
    }
}
