//! **HGOS** — the Heuristic Greedy Offloading Scheme of Guo, Liu & Zhang,
//! "Computation offloading for multi-access mobile edge computing in
//! ultra-dense networks" (the paper's reference \[12\] and its main
//! comparator in Section V.B).
//!
//! Reference \[12\] has no public implementation; this reconstruction keeps
//! the two properties the paper's evaluation relies on:
//!
//! 1. it is *energy/latency-competitive*: each task greedily picks the
//!    site minimizing a normalized overhead `w·t̂ + (1−w)·Ê`, respecting
//!    capacity as it goes;
//! 2. it is *deadline-oblivious*: per the paper's Fig. 3 discussion, HGOS
//!    "has quite large unsatisfied task rate" because task deadlines do
//!    not enter its greedy choice.
//!
//! See DESIGN.md §4 for the substitution rationale.

use crate::assignment::{Assignment, Decision};
use crate::costs::CostTable;
use crate::error::AssignError;
use crate::hta::HtaAlgorithm;
use mec_sim::task::{ExecutionSite, HolisticTask};
use mec_sim::topology::MecSystem;

/// The HGOS comparator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hgos {
    /// Weight of latency in the overhead (`1 - latency_weight` weighs
    /// energy). Reference \[12\] balances both; 0.5 by default.
    pub latency_weight: f64,
}

impl Default for Hgos {
    fn default() -> Self {
        Hgos {
            latency_weight: 0.5,
        }
    }
}

impl HtaAlgorithm for Hgos {
    fn name(&self) -> &'static str {
        "HGOS"
    }

    fn assign(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
    ) -> Result<Assignment, AssignError> {
        if tasks.len() != costs.len() {
            return Err(AssignError::LengthMismatch {
                tasks: tasks.len(),
                other: costs.len(),
            });
        }
        let w = self.latency_weight.clamp(0.0, 1.0);
        let mut device_free: Vec<f64> = system
            .devices()
            .iter()
            .map(|d| d.max_resource.value())
            .collect();
        let mut station_free: Vec<f64> = system
            .stations()
            .iter()
            .map(|s| s.max_resource.value())
            .collect();

        let mut decisions = Vec::with_capacity(tasks.len());
        for (idx, task) in tasks.iter().enumerate() {
            let need = task.resource.value();
            let dev = task.owner.0;
            let st = system.station_of(task.owner)?.0;

            // Normalize by the worst candidate so both terms are in [0,1].
            let t_max = ExecutionSite::ALL
                .iter()
                .map(|&s| costs.at(idx, s).time.value())
                .fold(0.0f64, f64::max)
                .max(f64::MIN_POSITIVE);
            let e_max = ExecutionSite::ALL
                .iter()
                .map(|&s| costs.at(idx, s).energy.value())
                .fold(0.0f64, f64::max)
                .max(f64::MIN_POSITIVE);

            let mut best: Option<(ExecutionSite, f64)> = None;
            for site in ExecutionSite::ALL {
                let fits = match site {
                    ExecutionSite::Device => device_free[dev] >= need,
                    ExecutionSite::Station => station_free[st] >= need,
                    ExecutionSite::Cloud => true,
                };
                if !fits {
                    continue;
                }
                let c = costs.at(idx, site);
                let overhead = w * c.time.value() / t_max + (1.0 - w) * c.energy.value() / e_max;
                if best.is_none_or(|(_, b)| overhead < b) {
                    best = Some((site, overhead));
                }
            }
            let (site, _) = best.expect("the cloud always fits");
            match site {
                ExecutionSite::Device => device_free[dev] -= need,
                ExecutionSite::Station => station_free[st] -= need,
                ExecutionSite::Cloud => {}
            }
            decisions.push(Decision::Assigned(site));
        }
        Ok(Assignment::new(decisions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hta::{AllToC, LpHta};
    use crate::metrics::{capacity_usage, evaluate_assignment};
    use mec_sim::units::Bytes;
    use mec_sim::workload::ScenarioConfig;

    fn setup(seed: u64) -> (mec_sim::workload::Scenario, CostTable) {
        let s = ScenarioConfig::paper_defaults(seed).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        (s, costs)
    }

    #[test]
    fn respects_capacities() {
        let (s, costs) = setup(31);
        let a = Hgos::default().assign(&s.system, &s.tasks, &costs).unwrap();
        let usage = capacity_usage(&s.system, &s.tasks, &a).unwrap();
        assert!(usage.within_limits(&s.system, Bytes::new(1e-6)));
        assert!(a.cancelled().is_empty(), "HGOS never cancels");
    }

    #[test]
    fn energy_competitive_but_worse_than_lp_hta() {
        let (s, costs) = setup(32);
        let hgos = evaluate_assignment(
            &s.tasks,
            &costs,
            &Hgos::default().assign(&s.system, &s.tasks, &costs).unwrap(),
        )
        .unwrap();
        let lp = evaluate_assignment(
            &s.tasks,
            &costs,
            &LpHta::paper().assign(&s.system, &s.tasks, &costs).unwrap(),
        )
        .unwrap();
        let cloud = evaluate_assignment(
            &s.tasks,
            &costs,
            &AllToC.assign(&s.system, &s.tasks, &costs).unwrap(),
        )
        .unwrap();
        // The paper's Fig. 2 shape: HGOS and LP-HTA nearly overlap, both
        // far below the cloud baseline. Pointwise either may edge out the
        // other (LP-HTA's rounding can trail the greedy by a few percent
        // on instances with capacity pressure), so assert mutual
        // closeness rather than a strict winner.
        assert!(hgos.total_energy < cloud.total_energy * 0.8);
        assert!(lp.total_energy < cloud.total_energy * 0.8);
        let ratio = lp.total_energy.value() / hgos.total_energy.value();
        assert!(
            (0.95..=1.05).contains(&ratio),
            "LP-HTA and HGOS diverged: ratio {ratio}"
        );
    }

    #[test]
    fn deadline_oblivious_has_higher_unsatisfied_rate() {
        // Tighten deadlines: HGOS ignores them, LP-HTA honors them.
        let mut cfg = ScenarioConfig::paper_defaults(33);
        cfg.deadline_factor_range = (1.0, 1.3);
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let hgos = evaluate_assignment(
            &s.tasks,
            &costs,
            &Hgos::default().assign(&s.system, &s.tasks, &costs).unwrap(),
        )
        .unwrap();
        let lp = evaluate_assignment(
            &s.tasks,
            &costs,
            &LpHta::paper().assign(&s.system, &s.tasks, &costs).unwrap(),
        )
        .unwrap();
        assert!(
            lp.unsatisfied_rate <= hgos.unsatisfied_rate,
            "LP-HTA {} vs HGOS {}",
            lp.unsatisfied_rate,
            hgos.unsatisfied_rate
        );
    }

    #[test]
    fn pure_latency_weight_prefers_fast_sites() {
        let (s, costs) = setup(34);
        let fast = Hgos {
            latency_weight: 1.0,
        };
        let a = fast.assign(&s.system, &s.tasks, &costs).unwrap();
        let m = evaluate_assignment(&s.tasks, &costs, &a).unwrap();
        let frugal = Hgos {
            latency_weight: 0.0,
        };
        let b = frugal.assign(&s.system, &s.tasks, &costs).unwrap();
        let mb = evaluate_assignment(&s.tasks, &costs, &b).unwrap();
        assert!(m.mean_latency <= mb.mean_latency);
        assert!(mb.total_energy <= m.total_energy);
    }
}
