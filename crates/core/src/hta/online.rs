//! **Online HTA** (extension): tasks arrive one at a time and must be
//! placed immediately and irrevocably — the streaming version of the
//! paper's batch problem, natural for a deployed MEC controller.
//!
//! Two policies:
//!
//! * [`OnlinePolicy::Greedy`] — place each arrival at its cheapest
//!   deadline-feasible site with remaining capacity; cancel if none.
//! * [`OnlinePolicy::Reserve`] — the same, but a task may only claim a
//!   device/station slot while the *post-placement* free capacity stays
//!   above a reserve fraction, holding headroom for future arrivals.
//!   Classic admission control: worse on easy sequences, better under
//!   pressure.
//!
//! The `ext_online` bench measures both against the offline LP-HTA on the
//! same sequences (an empirical competitive ratio).

use crate::assignment::{Assignment, Decision};
use crate::costs::CostTable;
use crate::error::AssignError;
use crate::hta::HtaAlgorithm;
use mec_sim::task::{ExecutionSite, HolisticTask};
use mec_sim::topology::MecSystem;

/// Placement policy of the online controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OnlinePolicy {
    /// Cheapest feasible site, first come first served.
    Greedy,
    /// Cheapest feasible site whose post-placement free capacity stays
    /// above `reserve` × total capacity (cloud is always admissible).
    Reserve {
        /// Reserved headroom fraction in `[0, 1)`.
        reserve: f64,
    },
}

/// The online controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineHta {
    /// Placement policy.
    pub policy: OnlinePolicy,
}

impl Default for OnlineHta {
    fn default() -> Self {
        OnlineHta {
            policy: OnlinePolicy::Greedy,
        }
    }
}

impl HtaAlgorithm for OnlineHta {
    fn name(&self) -> &'static str {
        match self.policy {
            OnlinePolicy::Greedy => "Online-Greedy",
            OnlinePolicy::Reserve { .. } => "Online-Reserve",
        }
    }

    fn assign(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
    ) -> Result<Assignment, AssignError> {
        if tasks.len() != costs.len() {
            return Err(AssignError::LengthMismatch {
                tasks: tasks.len(),
                other: costs.len(),
            });
        }
        let reserve = match self.policy {
            OnlinePolicy::Greedy => 0.0,
            OnlinePolicy::Reserve { reserve } => reserve.clamp(0.0, 0.99),
        };
        let device_total: Vec<f64> = system
            .devices()
            .iter()
            .map(|d| d.max_resource.value())
            .collect();
        let station_total: Vec<f64> = system
            .stations()
            .iter()
            .map(|s| s.max_resource.value())
            .collect();
        let mut device_free = device_total.clone();
        let mut station_free = station_total.clone();

        let mut decisions = Vec::with_capacity(tasks.len());
        for (idx, task) in tasks.iter().enumerate() {
            let need = task.resource.value();
            let dev = task.owner.0;
            let st = system.station_of(task.owner)?.0;

            let admissible = |site: ExecutionSite,
                              device_free: &[f64],
                              station_free: &[f64]|
             -> bool {
                match site {
                    ExecutionSite::Device => device_free[dev] - need >= reserve * device_total[dev],
                    ExecutionSite::Station => {
                        station_free[st] - need >= reserve * station_total[st]
                    }
                    ExecutionSite::Cloud => true,
                }
            };

            let choice = ExecutionSite::ALL
                .iter()
                .filter(|&&s| costs.feasible(idx, s, task.deadline))
                .filter(|&&s| admissible(s, &device_free, &station_free))
                .min_by(|&&a, &&b| {
                    costs
                        .at(idx, a)
                        .energy
                        .value()
                        .total_cmp(&costs.at(idx, b).energy.value())
                });
            match choice {
                Some(&site) => {
                    match site {
                        ExecutionSite::Device => device_free[dev] -= need,
                        ExecutionSite::Station => station_free[st] -= need,
                        ExecutionSite::Cloud => {}
                    }
                    decisions.push(Decision::Assigned(site));
                }
                None => decisions.push(Decision::Cancelled),
            }
        }
        Ok(Assignment::new(decisions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hta::LpHta;
    use crate::metrics::{capacity_usage, evaluate_assignment};
    use mec_sim::units::Bytes;
    use mec_sim::workload::ScenarioConfig;

    fn setup(seed: u64, tasks: usize, dev_mb: f64) -> (mec_sim::workload::Scenario, CostTable) {
        let mut cfg = ScenarioConfig::paper_defaults(seed);
        cfg.tasks_total = tasks;
        cfg.device_resource_mb = dev_mb;
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        (s, costs)
    }

    #[test]
    fn online_respects_all_constraints() {
        for policy in [OnlinePolicy::Greedy, OnlinePolicy::Reserve { reserve: 0.2 }] {
            let (s, costs) = setup(121, 200, 6.0);
            let a = OnlineHta { policy }
                .assign(&s.system, &s.tasks, &costs)
                .unwrap();
            for (idx, task) in s.tasks.iter().enumerate() {
                if let Some(site) = a.decision(idx).site() {
                    assert!(costs.feasible(idx, site, task.deadline));
                }
            }
            let usage = capacity_usage(&s.system, &s.tasks, &a).unwrap();
            assert!(usage.within_limits(&s.system, Bytes::new(1e-6)));
        }
    }

    #[test]
    fn offline_lp_hta_never_loses_to_online() {
        for seed in [122, 123, 124] {
            let (s, costs) = setup(seed, 150, 8.0);
            let online = evaluate_assignment(
                &s.tasks,
                &costs,
                &OnlineHta::default()
                    .assign(&s.system, &s.tasks, &costs)
                    .unwrap(),
            )
            .unwrap();
            let offline = evaluate_assignment(
                &s.tasks,
                &costs,
                &LpHta::paper().assign(&s.system, &s.tasks, &costs).unwrap(),
            )
            .unwrap();
            // The offline optimum-certified algorithm is at least as good
            // per assigned task; with equal cancellation counts it wins
            // outright.
            if online.cancelled == offline.cancelled {
                assert!(
                    offline.total_energy.value() <= online.total_energy.value() + 1e-6,
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn reserve_keeps_headroom() {
        let (s, costs) = setup(125, 300, 6.0);
        let greedy = OnlineHta::default()
            .assign(&s.system, &s.tasks, &costs)
            .unwrap();
        let reserve = OnlineHta {
            policy: OnlinePolicy::Reserve { reserve: 0.3 },
        }
        .assign(&s.system, &s.tasks, &costs)
        .unwrap();
        let g_use = capacity_usage(&s.system, &s.tasks, &greedy).unwrap();
        let r_use = capacity_usage(&s.system, &s.tasks, &reserve).unwrap();
        // Reserved devices keep at least the 30% headroom.
        for (used, d) in r_use.device_usage.iter().zip(s.system.devices()) {
            assert!(
                used.value() <= 0.7 * d.max_resource.value() + 1e-6,
                "device headroom violated"
            );
        }
        // Greedy packs devices at least as full overall.
        let g_total: f64 = g_use.device_usage.iter().map(|b| b.value()).sum();
        let r_total: f64 = r_use.device_usage.iter().map(|b| b.value()).sum();
        assert!(g_total >= r_total);
    }

    #[test]
    fn names_differ_by_policy() {
        assert_eq!(OnlineHta::default().name(), "Online-Greedy");
        assert_eq!(
            OnlineHta {
                policy: OnlinePolicy::Reserve { reserve: 0.1 }
            }
            .name(),
            "Online-Reserve"
        );
    }
}
