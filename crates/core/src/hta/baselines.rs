//! The classical comparators of Section V.B.
//!
//! * [`AllToC`] — every task goes to the remote cloud (the traditional
//!   cloud-computing strawman);
//! * [`AllOffload`] — every task is offloaded off the device: to the base
//!   station while its capacity lasts, then to the cloud;
//! * [`LocalFirst`] — the opposite extreme: keep work on the device while
//!   its capacity lasts (not in the paper; useful as a sanity bound);
//! * [`RandomAssign`] — a seeded uniform-random site per task.
//!
//! All baselines are deliberately deadline-oblivious, matching how the
//! paper describes them (their unsatisfied rates in Fig. 3 are high).

use crate::assignment::{Assignment, Decision};
use crate::costs::CostTable;
use crate::error::AssignError;
use crate::hta::HtaAlgorithm;
use detrand::{ChaCha8Rng, SliceRandom};
use mec_sim::task::{ExecutionSite, HolisticTask};
use mec_sim::topology::MecSystem;

/// Offload every task to the remote cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllToC;

impl HtaAlgorithm for AllToC {
    fn name(&self) -> &'static str {
        "AllToC"
    }

    fn assign(
        &self,
        _system: &MecSystem,
        tasks: &[HolisticTask],
        _costs: &CostTable,
    ) -> Result<Assignment, AssignError> {
        Ok(Assignment::uniform(tasks.len(), ExecutionSite::Cloud))
    }
}

/// Offload every task off the device: base station first (while `max_S`
/// lasts), cloud afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllOffload;

impl HtaAlgorithm for AllOffload {
    fn name(&self) -> &'static str {
        "AllOffload"
    }

    fn assign(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        _costs: &CostTable,
    ) -> Result<Assignment, AssignError> {
        let mut station_free: Vec<f64> = system
            .stations()
            .iter()
            .map(|s| s.max_resource.value())
            .collect();
        let mut decisions = Vec::with_capacity(tasks.len());
        for task in tasks {
            let st = system.station_of(task.owner)?;
            let need = task.resource.value();
            if station_free[st.0] >= need {
                station_free[st.0] -= need;
                decisions.push(Decision::Assigned(ExecutionSite::Station));
            } else {
                decisions.push(Decision::Assigned(ExecutionSite::Cloud));
            }
        }
        Ok(Assignment::new(decisions))
    }
}

/// Keep every task on its own device while `max_i` lasts, then the
/// station, then the cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LocalFirst;

impl HtaAlgorithm for LocalFirst {
    fn name(&self) -> &'static str {
        "LocalFirst"
    }

    fn assign(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        _costs: &CostTable,
    ) -> Result<Assignment, AssignError> {
        let mut device_free: Vec<f64> = system
            .devices()
            .iter()
            .map(|d| d.max_resource.value())
            .collect();
        let mut station_free: Vec<f64> = system
            .stations()
            .iter()
            .map(|s| s.max_resource.value())
            .collect();
        let mut decisions = Vec::with_capacity(tasks.len());
        for task in tasks {
            let need = task.resource.value();
            let dev = task.owner.0;
            let st = system.station_of(task.owner)?.0;
            let d = if device_free[dev] >= need {
                device_free[dev] -= need;
                ExecutionSite::Device
            } else if station_free[st] >= need {
                station_free[st] -= need;
                ExecutionSite::Station
            } else {
                ExecutionSite::Cloud
            };
            decisions.push(Decision::Assigned(d));
        }
        Ok(Assignment::new(decisions))
    }
}

/// Uniform-random site per task (deterministic in the seed). Ignores both
/// deadlines and capacities; a floor for every metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomAssign {
    /// RNG seed.
    pub seed: u64,
}

impl HtaAlgorithm for RandomAssign {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn assign(
        &self,
        _system: &MecSystem,
        tasks: &[HolisticTask],
        _costs: &CostTable,
    ) -> Result<Assignment, AssignError> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let decisions = tasks
            .iter()
            .map(|_| {
                let site = *ExecutionSite::ALL.choose(&mut rng).expect("nonempty");
                Decision::Assigned(site)
            })
            .collect();
        Ok(Assignment::new(decisions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{capacity_usage, evaluate_assignment};
    use mec_sim::units::Bytes;
    use mec_sim::workload::ScenarioConfig;

    fn setup() -> (mec_sim::workload::Scenario, CostTable) {
        let s = ScenarioConfig::paper_defaults(21).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        (s, costs)
    }

    #[test]
    fn all_to_c_sends_everything_to_cloud() {
        let (s, costs) = setup();
        let a = AllToC.assign(&s.system, &s.tasks, &costs).unwrap();
        assert_eq!(a.site_counts(), [0, 0, s.tasks.len()]);
    }

    #[test]
    fn all_offload_respects_station_capacity() {
        let (s, costs) = setup();
        let a = AllOffload.assign(&s.system, &s.tasks, &costs).unwrap();
        let [dev, _, _] = a.site_counts();
        assert_eq!(dev, 0, "AllOffload never uses devices");
        let usage = capacity_usage(&s.system, &s.tasks, &a).unwrap();
        assert!(usage.within_limits(&s.system, Bytes::new(1e-6)));
    }

    #[test]
    fn all_offload_spills_to_cloud_when_stations_fill() {
        let mut cfg = ScenarioConfig::paper_defaults(21);
        cfg.station_resource_mb = 10.0; // tiny stations
        cfg.tasks_total = 200;
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let a = AllOffload.assign(&s.system, &s.tasks, &costs).unwrap();
        let [_, _, cloud] = a.site_counts();
        assert!(cloud > 0, "overflow must reach the cloud");
    }

    #[test]
    fn local_first_respects_device_capacity() {
        let (s, costs) = setup();
        let a = LocalFirst.assign(&s.system, &s.tasks, &costs).unwrap();
        let usage = capacity_usage(&s.system, &s.tasks, &a).unwrap();
        assert!(usage.within_limits(&s.system, Bytes::new(1e-6)));
        let [dev, _, _] = a.site_counts();
        assert!(dev > 0, "devices should hold some work");
    }

    #[test]
    fn random_is_seed_deterministic() {
        let (s, costs) = setup();
        let a = RandomAssign { seed: 5 }
            .assign(&s.system, &s.tasks, &costs)
            .unwrap();
        let b = RandomAssign { seed: 5 }
            .assign(&s.system, &s.tasks, &costs)
            .unwrap();
        let c = RandomAssign { seed: 6 }
            .assign(&s.system, &s.tasks, &costs)
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn cloud_baseline_is_energy_worst() {
        let (s, costs) = setup();
        let cloud = evaluate_assignment(
            &s.tasks,
            &costs,
            &AllToC.assign(&s.system, &s.tasks, &costs).unwrap(),
        )
        .unwrap();
        let offload = evaluate_assignment(
            &s.tasks,
            &costs,
            &AllOffload.assign(&s.system, &s.tasks, &costs).unwrap(),
        )
        .unwrap();
        let local = evaluate_assignment(
            &s.tasks,
            &costs,
            &LocalFirst.assign(&s.system, &s.tasks, &costs).unwrap(),
        )
        .unwrap();
        assert!(cloud.total_energy > offload.total_energy);
        assert!(offload.total_energy > local.total_energy);
    }
}
