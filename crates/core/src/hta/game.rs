//! **NashOffload** — a decentralized computation-offloading *game*, after
//! Chen's multi-user offloading game (the paper's reference \[8\]) and the
//! behavioral variant of Tang & He \[13\].
//!
//! Each task is a selfish player choosing its site to minimize its own
//! overhead. The coupling that makes this a game is *edge congestion*:
//! a base station's CPU is shared, so a task computing at a station that
//! currently hosts `q` tasks runs `q`× slower. Players repeatedly play
//! best responses until no one can improve — a pure Nash equilibrium,
//! which exists because the game is a congestion game with a potential
//! function (each move strictly decreases the mover's overhead, and the
//! finite improvement property bounds the dynamics).
//!
//! Players honor the C2/C3 resource capacities (a site is only playable
//! while it has room) but are deadline-oblivious, as the references do
//! not model per-task deadlines — so NashOffload trades unsatisfied rate
//! for energy exactly the way the paper criticizes.

use crate::assignment::{Assignment, Decision};
use crate::costs::CostTable;
use crate::error::AssignError;
use crate::hta::HtaAlgorithm;
use mec_sim::task::{ExecutionSite, HolisticTask};
use mec_sim::topology::MecSystem;

/// The best-response offloading game.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NashOffload {
    /// Weight of latency in each player's overhead (energy gets the
    /// complement).
    pub latency_weight: f64,
    /// Safety cap on best-response rounds.
    pub max_rounds: usize,
}

impl Default for NashOffload {
    fn default() -> Self {
        NashOffload {
            latency_weight: 0.5,
            max_rounds: 100,
        }
    }
}

/// Result details of the dynamics, exposed for tests and diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct GameOutcome {
    /// The equilibrium (or cap-hit) assignment.
    pub assignment: Assignment,
    /// Rounds of best-response dynamics played.
    pub rounds: usize,
    /// Whether a full round passed with no player moving (true Nash
    /// equilibrium) before the round cap.
    pub converged: bool,
}

impl NashOffload {
    /// Plays the game and reports convergence details.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn play(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
    ) -> Result<GameOutcome, AssignError> {
        if tasks.len() != costs.len() {
            return Err(AssignError::LengthMismatch {
                tasks: tasks.len(),
                other: costs.len(),
            });
        }
        let w = self.latency_weight.clamp(0.0, 1.0);
        let n_stations = system.num_stations();
        let station_of: Vec<usize> = tasks
            .iter()
            .map(|t| system.station_of(t.owner).map(|s| s.0))
            .collect::<Result<_, _>>()?;

        // Everybody starts at the cloud (always admissible); the dynamics
        // then migrate work down while capacity lasts.
        let mut sites: Vec<ExecutionSite> = vec![ExecutionSite::Cloud; tasks.len()];
        let mut station_load = vec![0usize; n_stations];
        let mut device_free: Vec<f64> = system
            .devices()
            .iter()
            .map(|d| d.max_resource.value())
            .collect();
        let mut station_free: Vec<f64> = system
            .stations()
            .iter()
            .map(|s| s.max_resource.value())
            .collect();

        // Per-player normalization so overheads are commensurable.
        let norms: Vec<(f64, f64)> = (0..tasks.len())
            .map(|idx| {
                let t_max = ExecutionSite::ALL
                    .iter()
                    .map(|&s| costs.at(idx, s).time.value())
                    .fold(f64::MIN_POSITIVE, f64::max);
                let e_max = ExecutionSite::ALL
                    .iter()
                    .map(|&s| costs.at(idx, s).energy.value())
                    .fold(f64::MIN_POSITIVE, f64::max);
                (t_max, e_max)
            })
            .collect();

        let overhead = |idx: usize, site: ExecutionSite, load_after: usize| -> f64 {
            let c = costs.at(idx, site);
            let (t_max, e_max) = norms[idx];
            // Congestion: the station CPU is time-shared among the tasks
            // computing there, so compute time scales with the queue.
            let time = match site {
                ExecutionSite::Station => {
                    let base = c.time.value();
                    // Approximate the compute share of the station time
                    // via the cost model's compute component: total time
                    // minus what the task takes at an empty station is
                    // not recoverable here, so scale the whole station
                    // term conservatively by the load factor on the
                    // compute fraction (documented approximation).
                    base * (1.0 + 0.25 * load_after.saturating_sub(1) as f64)
                }
                _ => c.time.value(),
            };
            w * time / t_max + (1.0 - w) * c.energy.value() / e_max
        };

        let mut rounds = 0usize;
        let mut converged = false;
        while rounds < self.max_rounds {
            rounds += 1;
            let mut moved = false;
            for idx in 0..tasks.len() {
                let st = station_of[idx];
                let current = sites[idx];
                let current_cost = overhead(idx, current, station_load[st]);
                let need = tasks[idx].resource.value();
                let mut best = (current, current_cost);
                for site in ExecutionSite::ALL {
                    if site == current {
                        continue;
                    }
                    let fits = match site {
                        ExecutionSite::Device => device_free[tasks[idx].owner.0] >= need,
                        ExecutionSite::Station => station_free[st] >= need,
                        ExecutionSite::Cloud => true,
                    };
                    if !fits {
                        continue;
                    }
                    let load_after = if site == ExecutionSite::Station {
                        station_load[st] + 1
                    } else {
                        station_load[st]
                    };
                    let cost = overhead(idx, site, load_after);
                    if cost + 1e-12 < best.1 {
                        best = (site, cost);
                    }
                }
                if best.0 != current {
                    match current {
                        ExecutionSite::Station => {
                            station_load[st] -= 1;
                            station_free[st] += need;
                        }
                        ExecutionSite::Device => device_free[tasks[idx].owner.0] += need,
                        ExecutionSite::Cloud => {}
                    }
                    match best.0 {
                        ExecutionSite::Station => {
                            station_load[st] += 1;
                            station_free[st] -= need;
                        }
                        ExecutionSite::Device => device_free[tasks[idx].owner.0] -= need,
                        ExecutionSite::Cloud => {}
                    }
                    sites[idx] = best.0;
                    moved = true;
                }
            }
            if !moved {
                converged = true;
                break;
            }
        }

        let decisions = sites.into_iter().map(Decision::Assigned).collect();
        Ok(GameOutcome {
            assignment: Assignment::new(decisions),
            rounds,
            converged,
        })
    }
}

impl HtaAlgorithm for NashOffload {
    fn name(&self) -> &'static str {
        "NashOffload"
    }

    fn assign(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
    ) -> Result<Assignment, AssignError> {
        Ok(self.play(system, tasks, costs)?.assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hta::{AllToC, LpHta};
    use crate::metrics::evaluate_assignment;
    use mec_sim::workload::ScenarioConfig;

    fn setup(seed: u64, tasks: usize) -> (mec_sim::workload::Scenario, CostTable) {
        let mut cfg = ScenarioConfig::paper_defaults(seed);
        cfg.tasks_total = tasks;
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        (s, costs)
    }

    #[test]
    fn dynamics_reach_equilibrium() {
        let (s, costs) = setup(91, 150);
        let out = NashOffload::default()
            .play(&s.system, &s.tasks, &costs)
            .unwrap();
        assert!(
            out.converged,
            "best response should converge well before the cap"
        );
        assert!(out.rounds < 50, "rounds {}", out.rounds);
        assert_eq!(out.assignment.len(), s.tasks.len());
    }

    #[test]
    fn equilibrium_is_stable_under_replay() {
        let (s, costs) = setup(92, 100);
        let a = NashOffload::default()
            .play(&s.system, &s.tasks, &costs)
            .unwrap();
        let b = NashOffload::default()
            .play(&s.system, &s.tasks, &costs)
            .unwrap();
        assert_eq!(a.assignment, b.assignment, "the dynamics are deterministic");
    }

    #[test]
    fn beats_cloud_but_not_lp_hta_on_energy() {
        let (s, costs) = setup(93, 200);
        let nash = evaluate_assignment(
            &s.tasks,
            &costs,
            &NashOffload::default()
                .assign(&s.system, &s.tasks, &costs)
                .unwrap(),
        )
        .unwrap();
        let cloud = evaluate_assignment(
            &s.tasks,
            &costs,
            &AllToC.assign(&s.system, &s.tasks, &costs).unwrap(),
        )
        .unwrap();
        let lp = evaluate_assignment(
            &s.tasks,
            &costs,
            &LpHta::paper().assign(&s.system, &s.tasks, &costs).unwrap(),
        )
        .unwrap();
        assert!(nash.total_energy < cloud.total_energy);
        // Nash players are deadline-oblivious, so they may undercut
        // LP-HTA's energy slightly by parking tasks at infeasible sites;
        // the flip side is a worse unsatisfied rate.
        assert!(lp.total_energy <= nash.total_energy * 1.05);
        assert!(lp.unsatisfied_rate <= nash.unsatisfied_rate + 1e-9);
    }

    #[test]
    fn congestion_pushes_players_apart() {
        // With pure latency weight and many tasks, not everyone piles on
        // the station: congestion must spread load.
        let (s, costs) = setup(94, 250);
        let out = NashOffload {
            latency_weight: 1.0,
            max_rounds: 200,
        }
        .play(&s.system, &s.tasks, &costs)
        .unwrap();
        let [dev, st, cl] = out.assignment.site_counts();
        assert!(dev > 0, "someone stays local");
        assert!(
            st + cl < s.tasks.len(),
            "not everyone offloads: {dev}/{st}/{cl}"
        );
    }

    #[test]
    fn round_cap_is_respected() {
        let (s, costs) = setup(95, 60);
        let out = NashOffload {
            latency_weight: 0.5,
            max_rounds: 1,
        }
        .play(&s.system, &s.tasks, &costs)
        .unwrap();
        assert_eq!(out.rounds, 1);
    }
}
#[cfg(test)]
mod capacity_tests {
    use super::*;
    use crate::costs::CostTable;
    use crate::metrics::capacity_usage;
    use mec_sim::units::Bytes;
    use mec_sim::workload::ScenarioConfig;

    #[test]
    fn equilibrium_respects_capacities() {
        let mut cfg = ScenarioConfig::paper_defaults(96);
        cfg.tasks_total = 300;
        cfg.device_resource_mb = 5.0;
        cfg.station_resource_mb = 60.0;
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let out = NashOffload::default()
            .play(&s.system, &s.tasks, &costs)
            .unwrap();
        let usage = capacity_usage(&s.system, &s.tasks, &out.assignment).unwrap();
        assert!(usage.within_limits(&s.system, Bytes::new(1e-6)));
        let [dev, st, cl] = out.assignment.site_counts();
        assert!(
            dev > 0 && st > 0 && cl > 0,
            "pressure spreads players: {dev}/{st}/{cl}"
        );
    }
}
