//! **LP-HTA** — the paper's Section III.A algorithm, all six steps:
//!
//! 1. solve the relaxed LP `P2` of every cluster (sparse revised simplex
//!    by default — the HTA matrix is extremely sparse; the paper's
//!    interior-point backend remains available as an ablation);
//! 2. reshape the solution into the fractional matrix `X`;
//! 3. round every task to its largest fractional component;
//! 4. repair deadline violations by moving to the feasible site with the
//!    largest fraction, cancelling when none exists;
//! 5. repair per-device capacity (C2) by greedily migrating the largest
//!    occupations to the base station;
//! 6. repair station capacity (C3) by greedily migrating to the cloud.
//!
//! [`LpHtaReport`] exposes `E_LP^(OPT)`, the rounding energy, the repair
//! growth `Δ`, and both ratio-bound certificates (Theorem 2 and
//! Corollary 1), so every run carries its own approximation guarantee.

use crate::assignment::{Assignment, Decision};
use crate::costs::CostTable;
use crate::error::AssignError;
use crate::hta::relaxation::build_cluster_relaxation;
use crate::hta::{cluster_task_indices, HtaAlgorithm};
use detrand::ChaCha8Rng;
use linprog::{solve, Basis, LpStatus, Solver};
use mec_sim::task::{ExecutionSite, HolisticTask, TaskId};
use mec_sim::topology::{MecSystem, StationId};
use mec_sim::units::Bytes;
use std::collections::HashMap;

/// How Step 3 turns fractions into a site choice.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RoundingRule {
    /// The paper's rule: pick `argmax_l X[i,j,l]` (ties toward the lower
    /// level, i.e. the device).
    #[default]
    ArgMax,
    /// Randomized rounding proportional to the fractions (ablation A2);
    /// deterministic in the seed.
    Randomized {
        /// RNG seed.
        seed: u64,
    },
}

/// Diagnostics of one LP-HTA run (summed over clusters).
#[derive(Debug, Clone, PartialEq)]
pub struct LpHtaReport {
    /// `E_LP^(OPT)`: the optimum of the relaxation (a lower bound on the
    /// optimal integral energy).
    pub lp_objective: f64,
    /// Energy of the Step-3 rounding `x̂` before repair.
    pub rounded_energy: f64,
    /// Energy of the final assignment (assigned tasks only).
    pub final_energy: f64,
    /// `Δ`: energy growth caused by the Step 4–6 migrations.
    pub delta: f64,
    /// Theorem 2 certificate: `3 + Δ / E_LP^(OPT)`.
    pub theorem2_bound: f64,
    /// Corollary 1 certificate: `max E_ij3 / min E_ij1`.
    pub corollary1_bound: f64,
    /// The tighter of the two certificates.
    pub ratio_bound: f64,
    /// Tasks cancelled by the repair steps.
    pub cancelled: Vec<TaskId>,
    /// Total LP iterations across clusters.
    pub lp_iterations: usize,
}

/// One cluster's fractional Step-1/2 output: the tasks it covers and the
/// relaxed site fractions `X[i, ·]` for each of them.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterFractions {
    /// The cluster's base station.
    pub station: StationId,
    /// Global task indices covered by this cluster, in cluster order.
    pub task_indices: Vec<usize>,
    /// Fractional site weights per task (device, station, cloud), parallel
    /// to `task_indices`.
    pub x: Vec<[f64; 3]>,
}

/// The Step-1/2 output of LP-HTA for a whole instance: every cluster's
/// fractional matrix plus the aggregate LP diagnostics. Computed by
/// [`LpHta::solve_relaxation`] and consumed by [`LpHta::round_with`]; the
/// split lets callers solve the (expensive) relaxation once and reuse it
/// across rounding rules, as the benchmark ablations do.
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalSolution {
    /// Per-cluster fractional matrices, in station order.
    pub clusters: Vec<ClusterFractions>,
    /// `E_LP^(OPT)` summed over clusters.
    pub lp_objective: f64,
    /// Total LP iterations across clusters.
    pub lp_iterations: usize,
}

/// Per-station warm-start bases carried across adjacent LP-HTA solves.
///
/// Cluster relaxations of nearby instances (adjacent sweep points, next
/// mobility epoch) differ only in their data, so the previous point's
/// optimal basis is usually still feasible and the solver can skip
/// phase 1 entirely. Feed one `WarmBases` through a chain of
/// [`LpHta::assign_with_report_warm`] calls; it records hit statistics
/// as it goes. Only the [`Solver::Revised`] backend consumes bases —
/// with any other backend the warm entry points behave exactly like
/// their cold counterparts.
#[derive(Debug, Clone, Default)]
pub struct WarmBases {
    bases: HashMap<StationId, Basis>,
    /// Solves for which a stored basis existed and was offered.
    pub attempts: u64,
    /// Offered bases the solver accepted (phase 1 skipped).
    pub hits: u64,
}

impl WarmBases {
    /// Fresh, empty chain state.
    #[must_use]
    pub fn new() -> WarmBases {
        WarmBases::default()
    }

    /// Stations currently holding a reusable basis.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// True when no basis is stored yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// The stored basis for `station`, if any. The serve loop reads this
    /// to hand each sharded cluster solve its own chained basis.
    #[must_use]
    pub fn basis(&self, station: StationId) -> Option<&Basis> {
        self.bases.get(&station)
    }

    /// Stores (or replaces) `station`'s chained basis.
    pub fn store(&mut self, station: StationId, basis: Basis) {
        self.bases.insert(station, basis);
    }

    /// Drops `station`'s stored basis — e.g. after churn changed the
    /// cluster's problem shape and the solver rejected the stale basis.
    pub fn clear(&mut self, station: StationId) {
        self.bases.remove(&station);
    }

    /// Fraction of offered bases the solver accepted (0 when none were
    /// offered yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.hits as f64 / self.attempts as f64
        }
    }
}

/// One cluster's Step-1/2 solve as produced by [`LpHta::solve_cluster`]:
/// the fractional matrix plus the chaining state the caller needs to keep
/// the warm chain going. This is the unit the online serve loop shards
/// over — clusters are independent by construction, so each can solve on
/// its own worker carrying its own basis, and the outputs assemble into a
/// [`FractionalSolution`] in station order.
#[derive(Debug, Clone)]
pub struct ClusterSolve {
    /// The cluster's fractional Step-2 output.
    pub fractions: ClusterFractions,
    /// The final basis for chaining (absent on greedy-seeded clusters,
    /// non-revised backends, or solves that ended without a real-column
    /// basis).
    pub basis: Option<Basis>,
    /// True when the supplied warm basis was accepted (phase 1 skipped).
    pub warm_used: bool,
    /// True when the supplied warm basis was structurally rejected
    /// (problem shape changed under the chain — a churn event).
    pub warm_rejected: bool,
    /// This cluster's contribution to `E_LP^(OPT)`.
    pub objective: f64,
    /// LP iterations spent on this cluster.
    pub iterations: usize,
}

/// The LP-HTA algorithm with a configurable LP backend and rounding rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpHta {
    /// LP backend for Step 1.
    pub solver: Solver,
    /// Rounding rule for Step 3.
    pub rounding: RoundingRule,
    /// Enables the provably exact greedy fast path: when every task's
    /// globally cheapest site is deadline-feasible and picking it for all
    /// tasks satisfies C2/C3, that assignment attains the per-task lower
    /// bound `Σ min_l E_ijl` and is therefore optimal — no LP needed.
    /// Instances under capacity or deadline pressure still take the full
    /// six-step LP path. Disable for the LP-backend ablation.
    pub fast_path: bool,
    /// Scalability guard: clusters with more tasks than this skip the
    /// dense LP (whose normal equations grow cubically) and seed Steps
    /// 3–6 with the greedy cheapest-feasible indicator instead. The
    /// repair steps still enforce every constraint; only the fractional
    /// seed differs. The paper's own experiments (≤ 450 tasks over 5
    /// clusters) never reach this limit.
    pub lp_cluster_limit: usize,
}

impl Default for LpHta {
    fn default() -> Self {
        LpHta::paper()
    }
}

impl LpHta {
    /// LP-HTA as the paper states it, on the production backend: sparse
    /// revised-simplex Step 1 (the relaxation matrix is block-angular and
    /// extremely sparse), arg-max Step 3, exact fast path enabled. The
    /// paper's own interior-point backend is the `solver:
    /// Solver::InteriorPoint` ablation; all backends agree on the optimum
    /// within the differential-test tolerance.
    pub fn paper() -> LpHta {
        LpHta {
            solver: Solver::Revised,
            rounding: RoundingRule::ArgMax,
            fast_path: true,
            lp_cluster_limit: 600,
        }
    }

    /// The full six-step pipeline with no fast path (ablation).
    pub fn without_fast_path(self) -> LpHta {
        LpHta {
            fast_path: false,
            ..self
        }
    }

    /// Greedy exact fast path. Returns `None` when its optimality
    /// precondition fails and the LP pipeline must run.
    fn try_fast_path(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
    ) -> Result<Option<(Assignment, LpHtaReport)>, AssignError> {
        let mut device_free: Vec<f64> = system
            .devices()
            .iter()
            .map(|d| d.max_resource.value())
            .collect();
        let mut station_free: Vec<f64> = system
            .stations()
            .iter()
            .map(|s| s.max_resource.value())
            .collect();
        let mut decisions = Vec::with_capacity(tasks.len());
        let mut energy = 0.0;
        for (idx, task) in tasks.iter().enumerate() {
            let cheapest = ExecutionSite::ALL
                .iter()
                .min_by(|&&a, &&b| {
                    costs
                        .at(idx, a)
                        .energy
                        .value()
                        .total_cmp(&costs.at(idx, b).energy.value())
                })
                .copied()
                .ok_or_else(|| {
                    AssignError::InvalidInput("no execution sites to choose from".into())
                })?;
            if !costs.feasible(idx, cheapest, task.deadline) {
                return Ok(None); // the lower bound is not attainable
            }
            let need = task.resource.value();
            match cheapest {
                ExecutionSite::Device => {
                    let d = task.owner.0;
                    if device_free[d] < need {
                        return Ok(None);
                    }
                    device_free[d] -= need;
                }
                ExecutionSite::Station => {
                    let st = system.station_of(task.owner)?.0;
                    if station_free[st] < need {
                        return Ok(None);
                    }
                    station_free[st] -= need;
                }
                ExecutionSite::Cloud => {}
            }
            energy += costs.at(idx, cheapest).energy.value();
            decisions.push(Decision::Assigned(cheapest));
        }
        // Every task sits at its unconstrained per-task minimum and all
        // constraints hold: this is the exact optimum, and it also equals
        // the LP optimum (the LP cannot go below Σ min_l E_ijl).
        let report = LpHtaReport {
            lp_objective: energy,
            rounded_energy: energy,
            final_energy: energy,
            delta: 0.0,
            theorem2_bound: 3.0,
            corollary1_bound: f64::INFINITY,
            ratio_bound: 3.0,
            cancelled: Vec::new(),
            lp_iterations: 0,
        };
        Ok(Some((Assignment::new(decisions), report)))
    }

    /// Runs the algorithm and returns both the assignment and the
    /// ratio-bound diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError`] for substrate failures or irrecoverable LP
    /// numerical failures. Per-task infeasibility is reported through
    /// cancellations, not errors.
    pub fn assign_with_report(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
    ) -> Result<(Assignment, LpHtaReport), AssignError> {
        if tasks.len() != costs.len() {
            return Err(AssignError::LengthMismatch {
                tasks: tasks.len(),
                other: costs.len(),
            });
        }
        // Umbrella span: relaxation and rounding nest under it, so the
        // flight recorder shows per-call LP-HTA totals even when the caller
        // (dsmec assign, a unit test) opens no sweep/point span of its own.
        let _timer = mec_obs::span("lp_hta/assign");
        if self.fast_path {
            if let Some(result) = self.try_fast_path(system, tasks, costs)? {
                mec_obs::counter_add("lp_hta/fast_path/hits", 1);
                return Ok(result);
            }
        }
        let fractional = self.solve_relaxation(system, tasks, costs)?;
        self.round_with(system, tasks, costs, &fractional)
    }

    /// Like [`Self::assign_with_report`], but threads a [`WarmBases`]
    /// chain through Step 1 so adjacent solves reuse each other's optimal
    /// bases. With an empty chain (or a non-[`Solver::Revised`] backend)
    /// this is behaviorally identical to the cold entry point; warm hits
    /// may land on a different optimal vertex of a degenerate relaxation,
    /// which changes nothing about the optimum or the certificates.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::assign_with_report`].
    pub fn assign_with_report_warm(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
        warm: &mut WarmBases,
    ) -> Result<(Assignment, LpHtaReport), AssignError> {
        if tasks.len() != costs.len() {
            return Err(AssignError::LengthMismatch {
                tasks: tasks.len(),
                other: costs.len(),
            });
        }
        let _timer = mec_obs::span("lp_hta/assign");
        if self.fast_path {
            if let Some(result) = self.try_fast_path(system, tasks, costs)? {
                mec_obs::counter_add("lp_hta/fast_path/hits", 1);
                return Ok(result);
            }
        }
        let fractional = self.solve_relaxation_inner(system, tasks, costs, Some(warm))?;
        self.round_with(system, tasks, costs, &fractional)
    }

    /// Steps 1–2: solves every cluster's relaxed LP (or seeds oversized
    /// clusters greedily) and returns the fractional matrices. The result
    /// depends on `solver`, `lp_cluster_limit` and the instance — not on
    /// the rounding rule — so it can be cached and fed to [`Self::round_with`]
    /// under several rounding rules.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError`] for substrate failures or irrecoverable LP
    /// numerical failures.
    pub fn solve_relaxation(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
    ) -> Result<FractionalSolution, AssignError> {
        self.solve_relaxation_inner(system, tasks, costs, None)
    }

    /// [`Self::solve_relaxation`] with a [`WarmBases`] chain: each
    /// cluster's LP is warm-started from the basis its station produced
    /// on the previous call, and the final bases are stored back.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::solve_relaxation`].
    pub fn solve_relaxation_warm(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
        warm: &mut WarmBases,
    ) -> Result<FractionalSolution, AssignError> {
        self.solve_relaxation_inner(system, tasks, costs, Some(warm))
    }

    fn solve_relaxation_inner(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
        mut warm: Option<&mut WarmBases>,
    ) -> Result<FractionalSolution, AssignError> {
        if tasks.len() != costs.len() {
            return Err(AssignError::LengthMismatch {
                tasks: tasks.len(),
                other: costs.len(),
            });
        }
        let _timer = mec_obs::span("lp_hta/relaxation");
        let mut fractional = FractionalSolution {
            clusters: Vec::new(),
            lp_objective: 0.0,
            lp_iterations: 0,
        };
        for (station, idxs) in cluster_task_indices(system, tasks)? {
            // Offer the chain's basis when the backend consumes one; the
            // immutable borrow must end before the store is updated below.
            let (solved, attempted) = {
                let prev = match (&warm, self.solver) {
                    (Some(store), Solver::Revised) => store.bases.get(&station),
                    _ => None,
                };
                let attempted = prev.is_some();
                (
                    self.solve_cluster(system, tasks, costs, station, &idxs, prev)?,
                    attempted,
                )
            };
            let Some(cs) = solved else { continue };
            if let Some(store) = &mut warm {
                if attempted {
                    store.attempts += 1;
                    mec_obs::counter_add("lp_hta/relaxation/warm_attempts", 1);
                }
                if cs.warm_used {
                    store.hits += 1;
                    mec_obs::counter_add("lp_hta/relaxation/warm_hits", 1);
                }
                match cs.basis {
                    Some(basis) => {
                        store.bases.insert(station, basis);
                    }
                    None => {
                        store.bases.remove(&station);
                    }
                }
            }
            if mec_obs::enabled() {
                let fractional_vars = cs
                    .fractions
                    .x
                    .iter()
                    .flatten()
                    .filter(|&&v| v > 1e-9 && v < 1.0 - 1e-9)
                    .count();
                mec_obs::counter_add("lp_hta/relaxation/fractional_vars", fractional_vars as u64);
            }
            fractional.lp_objective += cs.objective;
            fractional.lp_iterations += cs.iterations;
            fractional.clusters.push(cs.fractions);
        }
        Ok(fractional)
    }

    /// Steps 1–2 for a single cluster: builds and solves `station`'s
    /// relaxation — warm-started from `prev` on the [`Solver::Revised`]
    /// backend — or seeds it greedily past `lp_cluster_limit`. Returns
    /// `None` for clusters with no tasks or no solvable relaxation.
    ///
    /// Pure with respect to chain state: the caller owns basis storage
    /// (see [`WarmBases`]), which is what lets the serve loop run one
    /// `solve_cluster` per shard under the deterministic `par_map`
    /// contract and commit the returned bases serially.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError`] for substrate failures or irrecoverable LP
    /// numerical failures.
    pub fn solve_cluster(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
        station: StationId,
        idxs: &[usize],
        prev: Option<&Basis>,
    ) -> Result<Option<ClusterSolve>, AssignError> {
        if idxs.is_empty() {
            return Ok(None);
        }
        if idxs.len() > self.lp_cluster_limit {
            mec_obs::counter_add("lp_hta/relaxation/greedy_seeded", 1);
            // Scalability guard: greedy cheapest-feasible indicator
            // seed; the true LP optimum is lower-bounded by the sum
            // of per-task minima, which keeps the certificate valid.
            let mut objective = 0.0;
            let mut seed = Vec::with_capacity(idxs.len());
            for &i in idxs {
                let mut row = [0.0; 3];
                let best = ExecutionSite::ALL
                    .iter()
                    .filter(|&&s| costs.feasible(i, s, tasks[i].deadline))
                    .min_by(|&&a, &&b| {
                        costs
                            .at(i, a)
                            .energy
                            .value()
                            .total_cmp(&costs.at(i, b).energy.value())
                    })
                    .copied()
                    .unwrap_or(ExecutionSite::Cloud);
                row[best.index()] = 1.0;
                seed.push(row);
                objective += ExecutionSite::ALL
                    .iter()
                    .map(|&s| costs.at(i, s).energy.value())
                    .fold(f64::INFINITY, f64::min);
            }
            return Ok(Some(ClusterSolve {
                fractions: ClusterFractions {
                    station,
                    task_indices: idxs.to_vec(),
                    x: seed,
                },
                basis: None,
                warm_used: false,
                warm_rejected: false,
                objective,
                iterations: 0,
            }));
        }
        let Some(rel) = build_cluster_relaxation(system, tasks, costs, station, idxs)? else {
            return Ok(None);
        };
        // Step 1: solve the relaxation. `solve_from(_, None)` and
        // `solve(_, Revised)` share the same path (revised solve, dense
        // fallback), so threading the warm option through changes nothing
        // for cold solves.
        let (sol, basis, warm_used, warm_rejected) = if self.solver == Solver::Revised {
            let outcome = linprog::solve_from(&rel.lp, prev)?;
            let rejected = outcome.warm_rejection.is_some();
            (outcome.solution, outcome.basis, outcome.warm_used, rejected)
        } else {
            (solve(&rel.lp, self.solver)?, None, false, false)
        };
        let iterations = sol.iterations;
        // Step 2: the fractional matrix X. If the LP could not be
        // solved to optimality (pathological custom instances), fall
        // back to the always-feasible all-cloud fractional point.
        let (x, objective) = if sol.status == LpStatus::Optimal {
            (rel.fractional_matrix(&sol.x), sol.objective)
        } else {
            mec_obs::counter_add("lp_hta/relaxation/non_optimal", 1);
            let cloud: f64 = idxs
                .iter()
                .map(|&i| costs.at(i, ExecutionSite::Cloud).energy.value())
                .sum();
            (idxs.iter().map(|_| [0.0, 0.0, 1.0]).collect(), cloud)
        };
        Ok(Some(ClusterSolve {
            fractions: ClusterFractions {
                station,
                task_indices: idxs.to_vec(),
                x,
            },
            basis,
            warm_used,
            warm_rejected,
            objective,
            iterations,
        }))
    }

    /// Steps 3–6 plus certificates: rounds a precomputed [`FractionalSolution`]
    /// (from [`Self::solve_relaxation`], possibly cached) and repairs it into
    /// a feasible assignment under this instance's rounding rule.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError`] for substrate failures, and
    /// [`AssignError::InvalidInput`] when the fractional solution is
    /// malformed (a cluster whose matrix and task list disagree in length,
    /// or a task index outside `tasks`) — possible because
    /// [`FractionalSolution`] is a public type callers may build or cache
    /// themselves.
    pub fn round_with(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
        fractional: &FractionalSolution,
    ) -> Result<(Assignment, LpHtaReport), AssignError> {
        for (c, cluster) in fractional.clusters.iter().enumerate() {
            if cluster.x.len() != cluster.task_indices.len() {
                return Err(AssignError::InvalidInput(format!(
                    "fractional cluster {c} (station {:?}) has {} matrix rows for {} tasks",
                    cluster.station,
                    cluster.x.len(),
                    cluster.task_indices.len()
                )));
            }
            if let Some(&bad) = cluster.task_indices.iter().find(|&&i| i >= tasks.len()) {
                return Err(AssignError::InvalidInput(format!(
                    "fractional cluster {c} (station {:?}) references task index {bad}, \
                     but only {} tasks were supplied",
                    cluster.station,
                    tasks.len()
                )));
            }
        }
        let _timer = mec_obs::span("lp_hta/rounding");
        let mut assignment = Assignment::new(vec![Decision::Cancelled; tasks.len()]);
        let mut report = LpHtaReport {
            lp_objective: fractional.lp_objective,
            rounded_energy: 0.0,
            final_energy: 0.0,
            delta: 0.0,
            theorem2_bound: f64::INFINITY,
            corollary1_bound: f64::INFINITY,
            ratio_bound: f64::INFINITY,
            cancelled: Vec::new(),
            lp_iterations: fractional.lp_iterations,
        };
        let mut rng = match self.rounding {
            RoundingRule::Randomized { seed } => Some(ChaCha8Rng::seed_from_u64(seed)),
            RoundingRule::ArgMax => None,
        };

        for cluster in &fractional.clusters {
            let station = cluster.station;
            let idxs = &cluster.task_indices;
            let x = &cluster.x;

            // Step 3: rounding.
            let mut sites: Vec<Option<ExecutionSite>> = Vec::with_capacity(idxs.len());
            for row in x {
                let site = match &mut rng {
                    None => argmax_site(row),
                    Some(rng) => sample_site(row, rng),
                };
                sites.push(Some(site));
            }
            for (k, &idx) in idxs.iter().enumerate() {
                if let Some(site) = sites[k] {
                    report.rounded_energy += costs.at(idx, site).energy.value();
                }
            }

            mec_obs::counter_add("lp_hta/rounding/clusters", 1);

            // Steps 4–6 are the repair phase; its wall time and move
            // counters separate "how long we round" from "how long we
            // fix what rounding broke".
            let _repair_timer = mec_obs::span("lp_hta/repair");

            // Step 4: deadline repair.
            for (k, &idx) in idxs.iter().enumerate() {
                let deadline = tasks[idx].deadline;
                let Some(site) = sites[k] else { continue };
                if costs.feasible(idx, site, deadline) {
                    continue;
                }
                let fallback = ExecutionSite::ALL
                    .iter()
                    .filter(|&&s| costs.feasible(idx, s, deadline))
                    .max_by(|&&a, &&b| x[k][a.index()].total_cmp(&x[k][b.index()]))
                    .copied();
                mec_obs::counter_add("lp_hta/repair/deadline_moves", 1);
                sites[k] = fallback; // None ⇒ cancelled
            }

            // Step 5: per-device capacity repair (C2).
            for &device in system.cluster(station)? {
                let max_i = system.device(device)?.max_resource;
                repair_capacity(
                    tasks,
                    costs,
                    idxs,
                    &mut sites,
                    ExecutionSite::Device,
                    ExecutionSite::Station,
                    max_i,
                    |idx| tasks[idx].owner == device,
                );
            }

            // Step 6: station capacity repair (C3).
            let max_s = system.station(station)?.max_resource;
            repair_capacity(
                tasks,
                costs,
                idxs,
                &mut sites,
                ExecutionSite::Station,
                ExecutionSite::Cloud,
                max_s,
                |_| true,
            );

            // Materialize decisions.
            for (k, &idx) in idxs.iter().enumerate() {
                match sites[k] {
                    Some(site) => {
                        assignment.set(idx, Decision::Assigned(site));
                        report.final_energy += costs.at(idx, site).energy.value();
                    }
                    None => {
                        assignment.set(idx, Decision::Cancelled);
                        report.cancelled.push(tasks[idx].id);
                    }
                }
            }
        }

        // Ratio-bound certificates.
        report.delta = (report.final_energy - report.rounded_energy).max(0.0);
        if report.lp_objective > 0.0 {
            report.theorem2_bound = 3.0 + report.delta / report.lp_objective;
        }
        let max_e3 = (0..tasks.len())
            .map(|i| costs.at(i, ExecutionSite::Cloud).energy.value())
            .fold(0.0f64, f64::max);
        let min_e1 = (0..tasks.len())
            .map(|i| costs.at(i, ExecutionSite::Device).energy.value())
            .fold(f64::INFINITY, f64::min);
        if min_e1 > 0.0 && min_e1.is_finite() {
            report.corollary1_bound = max_e3 / min_e1;
        }
        report.ratio_bound = report.theorem2_bound.min(report.corollary1_bound);

        Ok((assignment, report))
    }
}

impl HtaAlgorithm for LpHta {
    fn name(&self) -> &'static str {
        "LP-HTA"
    }

    fn assign(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
    ) -> Result<Assignment, AssignError> {
        Ok(self.assign_with_report(system, tasks, costs)?.0)
    }
}

/// Step-3 arg-max rule; ties break toward the lower level, matching the
/// paper's preference for keeping work at the edge.
fn argmax_site(row: &[f64; 3]) -> ExecutionSite {
    let mut best = ExecutionSite::Device;
    for site in [ExecutionSite::Station, ExecutionSite::Cloud] {
        if row[site.index()] > row[best.index()] {
            best = site;
        }
    }
    best
}

/// Randomized rounding: sample a site proportional to the fractions.
fn sample_site(row: &[f64; 3], rng: &mut ChaCha8Rng) -> ExecutionSite {
    let total: f64 = row.iter().sum();
    if total <= 0.0 {
        return ExecutionSite::Cloud;
    }
    let mut draw = rng.gen_range(0.0..total);
    for site in ExecutionSite::ALL {
        let w = row[site.index()];
        if draw < w {
            return site;
        }
        draw -= w;
    }
    ExecutionSite::Cloud
}

/// Shared logic of Steps 5 and 6: while the tasks at `from` (filtered by
/// `belongs`) exceed `capacity`, migrate the largest occupation whose
/// deadline admits `to`; if none is movable, cancel the largest.
///
/// Also reused by the chaos [`crate::repair`] layer, which feeds it the
/// *residual* capacity left by unaffected tasks.
#[allow(clippy::too_many_arguments)]
pub(crate) fn repair_capacity(
    tasks: &[HolisticTask],
    costs: &CostTable,
    idxs: &[usize],
    sites: &mut [Option<ExecutionSite>],
    from: ExecutionSite,
    to: ExecutionSite,
    capacity: Bytes,
    belongs: impl Fn(usize) -> bool,
) {
    let usage = |sites: &[Option<ExecutionSite>]| -> Bytes {
        idxs.iter()
            .enumerate()
            .filter(|(k, &idx)| sites[*k] == Some(from) && belongs(idx))
            .map(|(_, &idx)| tasks[idx].resource)
            .sum()
    };

    while usage(sites) > capacity {
        // Movable set: at `from`, belongs, and deadline-feasible at `to`.
        let movable = idxs
            .iter()
            .enumerate()
            .filter(|(k, &idx)| {
                sites[*k] == Some(from)
                    && belongs(idx)
                    && costs.feasible(idx, to, tasks[idx].deadline)
            })
            .max_by(|(_, &a), (_, &b)| {
                tasks[a]
                    .resource
                    .value()
                    .total_cmp(&tasks[b].resource.value())
            })
            .map(|(k, _)| k);
        if let Some(k) = movable {
            sites[k] = Some(to);
            mec_obs::counter_add("lp_hta/repair/migrations", 1);
            continue;
        }
        // Nothing movable: cancel the largest remaining occupant.
        let victim = idxs
            .iter()
            .enumerate()
            .filter(|(k, &idx)| sites[*k] == Some(from) && belongs(idx))
            .max_by(|(_, &a), (_, &b)| {
                tasks[a]
                    .resource
                    .value()
                    .total_cmp(&tasks[b].resource.value())
            })
            .map(|(k, _)| k);
        match victim {
            Some(k) => {
                sites[k] = None;
                mec_obs::counter_add("lp_hta/repair/cancellations", 1);
            }
            None => break, // no occupants left; capacity must now hold
        }
    }
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_enum!(RoundingRule { ArgMax, Randomized { seed: u64 } });
djson::impl_json_struct!(LpHtaReport {
    lp_objective,
    rounded_energy,
    final_energy,
    delta,
    theorem2_bound,
    corollary1_bound,
    ratio_bound,
    cancelled,
    lp_iterations,
});
djson::impl_json_struct!(ClusterFractions {
    station,
    task_indices,
    x
});
djson::impl_json_struct!(FractionalSolution {
    clusters,
    lp_objective,
    lp_iterations
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{capacity_usage, evaluate_assignment};
    use mec_sim::units::Seconds;
    use mec_sim::workload::ScenarioConfig;

    fn run(
        seed: u64,
    ) -> (
        mec_sim::workload::Scenario,
        CostTable,
        Assignment,
        LpHtaReport,
    ) {
        // Exercise the full six-step LP pipeline, not the fast path.
        let s = ScenarioConfig::paper_defaults(seed).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let (a, r) = LpHta::paper()
            .without_fast_path()
            .assign_with_report(&s.system, &s.tasks, &costs)
            .unwrap();
        (s, costs, a, r)
    }

    #[test]
    fn fast_path_matches_full_pipeline_when_unconstrained() {
        let s = ScenarioConfig::paper_defaults(17).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let (fast, fr) = LpHta::paper()
            .assign_with_report(&s.system, &s.tasks, &costs)
            .unwrap();
        let (full, lr) = LpHta::paper()
            .without_fast_path()
            .assign_with_report(&s.system, &s.tasks, &costs)
            .unwrap();
        if fr.lp_iterations == 0 {
            // Fast path fired: it is exact, so the full pipeline cannot
            // beat it (and must be within its own certificate of it).
            assert!(lr.final_energy >= fr.final_energy - 1e-6);
            assert!(fr.final_energy <= lr.lp_objective * lr.ratio_bound + 1e-6);
            let _ = (fast, full);
        }
    }

    #[test]
    fn produces_feasible_assignments() {
        let (s, costs, a, _) = run(1);
        // C2/C3 hold.
        let usage = capacity_usage(&s.system, &s.tasks, &a).unwrap();
        assert!(usage.within_limits(&s.system, Bytes::new(1e-6)));
        // C1 holds for every assigned task.
        for (idx, task) in s.tasks.iter().enumerate() {
            if let Some(site) = a.decision(idx).site() {
                assert!(
                    costs.feasible(idx, site, task.deadline),
                    "{} misses its deadline at {site}",
                    task.id
                );
            }
        }
    }

    #[test]
    fn report_certificates_are_consistent() {
        let (_, _, a, r) = run(2);
        assert!(r.lp_objective > 0.0);
        // Note: the rounded point may *violate* capacity constraints, so
        // its energy can legitimately fall below the constrained LP
        // optimum; only the Lemma-1 upper bound is guaranteed.
        assert!(
            r.rounded_energy <= 3.0 * r.lp_objective + 1e-6,
            "Lemma 1: rounding within 3x of the LP optimum"
        );
        assert!((r.theorem2_bound - (3.0 + r.delta / r.lp_objective)).abs() < 1e-12);
        assert_eq!(r.ratio_bound, r.theorem2_bound.min(r.corollary1_bound));
        assert!(r.final_energy > 0.0);
        assert_eq!(a.cancelled().len(), r.cancelled.len());
    }

    #[test]
    fn beats_all_cloud_on_energy() {
        let (s, costs, a, _) = run(3);
        let lp = evaluate_assignment(&s.tasks, &costs, &a).unwrap();
        let cloud = Assignment::uniform(s.tasks.len(), ExecutionSite::Cloud);
        let cloud_m = evaluate_assignment(&s.tasks, &costs, &cloud).unwrap();
        assert!(
            lp.total_energy.value() < cloud_m.total_energy.value() * 0.6,
            "LP-HTA {} should be well below AllToC {}",
            lp.total_energy,
            cloud_m.total_energy
        );
    }

    #[test]
    fn unsatisfied_rate_is_low_with_achievable_deadlines() {
        let (s, costs, a, _) = run(4);
        let m = evaluate_assignment(&s.tasks, &costs, &a).unwrap();
        assert!(
            m.unsatisfied_rate < 0.15,
            "unsatisfied rate {} too high",
            m.unsatisfied_rate
        );
    }

    #[test]
    fn simplex_and_interior_point_agree_on_energy() {
        let s = ScenarioConfig::paper_defaults(5).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let ipm = LpHta::paper().without_fast_path();
        let spx = LpHta {
            solver: Solver::Simplex,
            rounding: RoundingRule::ArgMax,
            ..LpHta::paper().without_fast_path()
        };
        let (_, r1) = ipm.assign_with_report(&s.system, &s.tasks, &costs).unwrap();
        let (_, r2) = spx.assign_with_report(&s.system, &s.tasks, &costs).unwrap();
        let scale = 1.0 + r2.lp_objective.abs();
        assert!(
            (r1.lp_objective - r2.lp_objective).abs() < 1e-4 * scale,
            "LP optima differ: {} vs {}",
            r1.lp_objective,
            r2.lp_objective
        );
    }

    #[test]
    fn randomized_rounding_is_deterministic_in_seed() {
        let s = ScenarioConfig::paper_defaults(6).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let algo = LpHta {
            solver: Solver::Simplex,
            rounding: RoundingRule::Randomized { seed: 99 },
            ..LpHta::paper().without_fast_path()
        };
        let a1 = algo.assign(&s.system, &s.tasks, &costs).unwrap();
        let a2 = algo.assign(&s.system, &s.tasks, &costs).unwrap();
        assert_eq!(a1, a2);
    }

    #[test]
    fn tight_capacity_forces_migration_not_violation() {
        let mut cfg = ScenarioConfig::paper_defaults(7);
        cfg.device_resource_mb = 2.0; // tasks are ~1-4.5 MB: heavy pressure
        cfg.station_resource_mb = 20.0;
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let (a, _) = LpHta::paper()
            .assign_with_report(&s.system, &s.tasks, &costs)
            .unwrap();
        let usage = capacity_usage(&s.system, &s.tasks, &a).unwrap();
        assert!(usage.within_limits(&s.system, Bytes::new(1e-6)));
        // Pressure must push a material share of work off the devices.
        let [dev, _, _] = a.site_counts();
        assert!(dev < s.tasks.len());
    }

    #[test]
    fn impossible_deadlines_cancel_rather_than_violate() {
        let mut s = ScenarioConfig::paper_defaults(8).generate().unwrap();
        for t in s.tasks.iter_mut().take(5) {
            t.deadline = Seconds::new(1e-9);
        }
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let (a, r) = LpHta::paper()
            .assign_with_report(&s.system, &s.tasks, &costs)
            .unwrap();
        assert!(r.cancelled.len() >= 5);
        for idx in 0..5 {
            assert_eq!(a.decision(idx), Decision::Cancelled);
        }
    }

    #[test]
    fn split_relaxation_plus_rounding_matches_assign_with_report() {
        let s = ScenarioConfig::paper_defaults(9).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        for rounding in [RoundingRule::ArgMax, RoundingRule::Randomized { seed: 7 }] {
            let algo = LpHta {
                rounding,
                ..LpHta::paper().without_fast_path()
            };
            let frac = algo.solve_relaxation(&s.system, &s.tasks, &costs).unwrap();
            let (a1, r1) = algo.round_with(&s.system, &s.tasks, &costs, &frac).unwrap();
            let (a2, r2) = algo
                .assign_with_report(&s.system, &s.tasks, &costs)
                .unwrap();
            assert_eq!(a1, a2);
            assert_eq!(r1, r2);
        }
    }

    #[test]
    fn relaxation_is_independent_of_rounding_rule() {
        let s = ScenarioConfig::paper_defaults(10).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let a = LpHta::paper().without_fast_path();
        let b = LpHta {
            rounding: RoundingRule::Randomized { seed: 3 },
            ..a
        };
        let fa = a.solve_relaxation(&s.system, &s.tasks, &costs).unwrap();
        let fb = b.solve_relaxation(&s.system, &s.tasks, &costs).unwrap();
        assert_eq!(fa, fb);
    }

    #[test]
    fn round_with_rejects_row_count_mismatch() {
        let s = ScenarioConfig::paper_defaults(11).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let algo = LpHta::paper().without_fast_path();
        let mut frac = algo.solve_relaxation(&s.system, &s.tasks, &costs).unwrap();
        frac.clusters[0].x.pop();
        let err = algo
            .round_with(&s.system, &s.tasks, &costs, &frac)
            .unwrap_err();
        match err {
            AssignError::InvalidInput(msg) => assert!(msg.contains("matrix rows"), "{msg}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn round_with_rejects_out_of_range_task_index() {
        let s = ScenarioConfig::paper_defaults(12).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let algo = LpHta::paper().without_fast_path();
        let mut frac = algo.solve_relaxation(&s.system, &s.tasks, &costs).unwrap();
        frac.clusters[0].task_indices[0] = s.tasks.len();
        let err = algo
            .round_with(&s.system, &s.tasks, &costs, &frac)
            .unwrap_err();
        match err {
            AssignError::InvalidInput(msg) => assert!(msg.contains("task index"), "{msg}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn warm_chain_matches_cold_solves_across_adjacent_instances() {
        // A miniature sweep: the same scenario under progressively tighter
        // deadlines (shape-preserving, data-perturbing — exactly what
        // adjacent sweep points look like). The warm chain must reproduce
        // every cold optimum and actually hit once the chain is primed.
        let s = ScenarioConfig::paper_defaults(13).generate().unwrap();
        let algo = LpHta::paper().without_fast_path();
        let mut warm = WarmBases::new();
        for scale in [1.0, 1.0, 0.97, 0.94] {
            let mut tasks = s.tasks.clone();
            for t in &mut tasks {
                t.deadline = Seconds::new(t.deadline.value() * scale);
            }
            let costs = CostTable::build(&s.system, &tasks).unwrap();
            let cold = algo.solve_relaxation(&s.system, &tasks, &costs).unwrap();
            let chained = algo
                .solve_relaxation_warm(&s.system, &tasks, &costs, &mut warm)
                .unwrap();
            let scale_tol = 1e-6 * (1.0 + cold.lp_objective.abs());
            assert!(
                (chained.lp_objective - cold.lp_objective).abs() < scale_tol,
                "warm objective {} vs cold {} at deadline scale {scale}",
                chained.lp_objective,
                cold.lp_objective
            );
        }
        assert!(!warm.is_empty(), "chain should retain bases");
        assert!(warm.attempts >= 3, "attempts: {}", warm.attempts);
        assert!(
            warm.hits >= 1,
            "re-solving an identical instance must accept the stored basis ({} attempts)",
            warm.attempts
        );
    }

    #[test]
    fn warm_chain_survives_mid_chain_growth_and_shrink() {
        // Churn regression: a serve session grows and shrinks its task
        // population mid-chain, so the stored bases go structurally stale
        // whenever the per-cluster LP changes shape. The chain must never
        // corrupt a solve — every epoch still matches the cold optimum —
        // and must keep hitting once the shape stabilises again.
        let algo = LpHta::paper().without_fast_path();
        let mut warm = WarmBases::new();
        for tasks_total in [100usize, 100, 120, 120, 80, 80] {
            let mut cfg = ScenarioConfig::paper_defaults(16);
            cfg.tasks_total = tasks_total;
            let s = cfg.generate().unwrap();
            let costs = CostTable::build(&s.system, &s.tasks).unwrap();
            let cold = algo.solve_relaxation(&s.system, &s.tasks, &costs).unwrap();
            let chained = algo
                .solve_relaxation_warm(&s.system, &s.tasks, &costs, &mut warm)
                .unwrap();
            let scale_tol = 1e-6 * (1.0 + cold.lp_objective.abs());
            assert!(
                (chained.lp_objective - cold.lp_objective).abs() < scale_tol,
                "warm objective {} vs cold {} at {tasks_total} tasks",
                chained.lp_objective,
                cold.lp_objective
            );
        }
        // Shape-matched re-solves (epochs 2, 4, 6) must accept the stored
        // basis; the two resizes must decline rather than hit blindly.
        assert!(warm.hits >= 1, "stable epochs should warm-hit");
        assert!(
            warm.hits < warm.attempts,
            "resized epochs must reject stale bases ({} hits / {} attempts)",
            warm.hits,
            warm.attempts
        );
        assert!(warm.hit_rate() > 0.0 && warm.hit_rate() < 1.0);
    }

    #[test]
    fn warm_assignment_is_feasible_and_certified() {
        let s = ScenarioConfig::paper_defaults(14).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let algo = LpHta::paper().without_fast_path();
        let mut warm = WarmBases::new();
        let (_, first) = algo
            .assign_with_report_warm(&s.system, &s.tasks, &costs, &mut warm)
            .unwrap();
        let (a, second) = algo
            .assign_with_report_warm(&s.system, &s.tasks, &costs, &mut warm)
            .unwrap();
        let tol = 1e-6 * (1.0 + first.lp_objective.abs());
        assert!((first.lp_objective - second.lp_objective).abs() < tol);
        let usage = capacity_usage(&s.system, &s.tasks, &a).unwrap();
        assert!(usage.within_limits(&s.system, Bytes::new(1e-6)));
        assert!(second.final_energy <= second.lp_objective * second.ratio_bound + 1e-6);
    }

    #[test]
    fn warm_entry_point_with_empty_chain_matches_cold_exactly() {
        let s = ScenarioConfig::paper_defaults(15).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let algo = LpHta::paper().without_fast_path();
        let (a_cold, r_cold) = algo
            .assign_with_report(&s.system, &s.tasks, &costs)
            .unwrap();
        let mut warm = WarmBases::new();
        let (a_warm, r_warm) = algo
            .assign_with_report_warm(&s.system, &s.tasks, &costs, &mut warm)
            .unwrap();
        // First use of a chain offers no basis, so the solve path is the
        // cold one bit for bit.
        assert_eq!(a_cold, a_warm);
        assert_eq!(r_cold, r_warm);
        assert_eq!(warm.hits, 0);
    }

    #[test]
    fn argmax_prefers_lower_level_on_ties() {
        assert_eq!(argmax_site(&[0.4, 0.4, 0.2]), ExecutionSite::Device);
        assert_eq!(argmax_site(&[0.2, 0.4, 0.4]), ExecutionSite::Station);
        assert_eq!(argmax_site(&[0.1, 0.2, 0.7]), ExecutionSite::Cloud);
    }
}
