//! Holistic Task Assignment (HTA): the NP-complete problem of Section II.C
//! and the algorithms of Section III plus the Section V comparators.
//!
//! * [`LpHta`] — the paper's LP-relaxation + rounding + repair algorithm;
//! * [`baselines`] — `AllToC`, `AllOffload`, `LocalFirst`, `RandomAssign`;
//! * [`Hgos`] — the Heuristic Greedy Offloading Scheme of reference \[12\]
//!   (reconstructed; see DESIGN.md for the substitution rationale);
//! * [`NashOffload`] — a decentralized offloading *game* played to Nash
//!   equilibrium (after references \[8\]/\[13\]);
//! * [`ExactBnB`] — branch-and-bound exact optimum for small instances,
//!   used to verify the approximation ratio empirically.

pub mod baselines;
pub mod exact;
pub mod game;
pub mod hgos;
pub mod lp_hta;
pub mod online;
pub mod partial;
pub mod relaxation;

pub use baselines::{AllOffload, AllToC, LocalFirst, RandomAssign};
pub use exact::ExactBnB;
pub use game::{GameOutcome, NashOffload};
pub use hgos::Hgos;
pub use lp_hta::{
    ClusterFractions, ClusterSolve, FractionalSolution, LpHta, LpHtaReport, RoundingRule, WarmBases,
};
pub use online::{OnlineHta, OnlinePolicy};
pub use partial::{optimal_split, partial_offload_plan, PartialPlan, PartialSplit};
pub use relaxation::station_capacity_prices;

use crate::assignment::Assignment;
use crate::costs::CostTable;
use crate::error::AssignError;
use mec_sim::task::HolisticTask;
use mec_sim::topology::{MecSystem, StationId};

/// A holistic-task-assignment algorithm.
pub trait HtaAlgorithm {
    /// Short name used in reports and figures.
    fn name(&self) -> &'static str;

    /// Produces an assignment for `tasks` on `system`, using the
    /// precomputed `costs` (one entry per task, same order).
    ///
    /// # Errors
    ///
    /// Implementations report substrate, LP and sizing errors through
    /// [`AssignError`]; infeasible *tasks* are expressed by cancellation
    /// inside the returned [`Assignment`], not as errors.
    fn assign(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
    ) -> Result<Assignment, AssignError>;
}

/// Groups task indices by the cluster (base station) of their owner, in
/// station order — the decomposition Section III.A applies before solving
/// each cluster separately.
///
/// # Errors
///
/// Propagates unknown-device errors.
pub fn cluster_task_indices(
    system: &MecSystem,
    tasks: &[HolisticTask],
) -> Result<Vec<(StationId, Vec<usize>)>, AssignError> {
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); system.num_stations()];
    for (idx, task) in tasks.iter().enumerate() {
        let st = system.station_of(task.owner)?;
        groups[st.0].push(idx);
    }
    Ok(groups
        .into_iter()
        .enumerate()
        .map(|(r, idxs)| (StationId(r), idxs))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_sim::workload::ScenarioConfig;

    #[test]
    fn clustering_partitions_all_tasks() {
        let s = ScenarioConfig::paper_defaults(6).generate().unwrap();
        let clusters = cluster_task_indices(&s.system, &s.tasks).unwrap();
        assert_eq!(clusters.len(), s.system.num_stations());
        let mut seen = vec![false; s.tasks.len()];
        for (st, idxs) in &clusters {
            for &i in idxs {
                assert!(!seen[i], "task {i} appears twice");
                seen[i] = true;
                assert_eq!(s.system.station_of(s.tasks[i].owner).unwrap(), *st);
            }
        }
        assert!(seen.iter().all(|&s| s), "every task is clustered");
    }
}
