//! Construction of the relaxed linear program `P2` of Section III.A for
//! one cluster.
//!
//! The paper states P2 with four constraint blocks. Block `A₁` — the
//! diagonal deadline rows `t_ijl·x_ijl ≤ T_ij` — is equivalent to the
//! variable bounds `x_ijl ≤ min(1, T_ij/t_ijl)`, so it is presolved into
//! bounds here (fewer rows, identical feasible set). Blocks `A₂` (per-
//! device capacity C2), `A₃` (station capacity C3) and `A₄` (one-site
//! equality C4) become explicit rows.

use crate::costs::CostTable;
use crate::error::AssignError;
use linprog::{ConstraintSense, LpProblem};
use mec_sim::task::{ExecutionSite, HolisticTask};
use mec_sim::topology::{DeviceId, MecSystem, StationId};

/// The relaxed LP of one cluster plus the index bookkeeping needed to map
/// its solution back onto tasks.
#[derive(Debug)]
pub struct ClusterRelaxation {
    /// The LP (minimization of `Σ E_ijl x_ijl`).
    pub lp: LpProblem,
    /// Global task indices of this cluster, in LP variable order: task
    /// `k` of the cluster owns variables `3k`, `3k+1`, `3k+2`.
    pub task_indices: Vec<usize>,
    /// LP row index of each device's C2 capacity constraint.
    pub device_rows: Vec<(DeviceId, usize)>,
    /// LP row index of the station's C3 capacity constraint.
    pub station_row: usize,
}

impl ClusterRelaxation {
    /// Variable index of `(cluster task k, site)`.
    pub fn var(&self, k: usize, site: ExecutionSite) -> usize {
        3 * k + site.index()
    }

    /// Reshapes a flat LP solution into the fractional matrix
    /// `X[k][l]` of Step 2.
    pub fn fractional_matrix(&self, x: &[f64]) -> Vec<[f64; 3]> {
        (0..self.task_indices.len())
            .map(|k| [x[3 * k], x[3 * k + 1], x[3 * k + 2]])
            .collect()
    }

    /// The *shadow price* of station capacity: the marginal change of the
    /// cluster's optimal energy per extra byte of `max_S`, read from the
    /// C3 row's dual value. Nonpositive at optimality (more capacity
    /// never costs energy); zero when the station is not full. `None`
    /// when the solver produced no duals.
    pub fn station_capacity_price(&self, duals: Option<&[f64]>) -> Option<f64> {
        duals.map(|d| d[self.station_row])
    }
}

/// Shadow prices of every station's C3 capacity across the system: how
/// many joules an extra byte of `max_S` would save. The actionable
/// output for the capacity-planning use case.
///
/// # Errors
///
/// Propagates relaxation and solver errors.
pub fn station_capacity_prices(
    system: &MecSystem,
    tasks: &[HolisticTask],
    costs: &CostTable,
) -> Result<Vec<(StationId, f64)>, AssignError> {
    let mut out = Vec::new();
    for (station, idxs) in crate::hta::cluster_task_indices(system, tasks)? {
        let Some(rel) = build_cluster_relaxation(system, tasks, costs, station, &idxs)? else {
            out.push((station, 0.0));
            continue;
        };
        let sol = linprog::solve(&rel.lp, linprog::Solver::Simplex)?;
        let price = rel
            .station_capacity_price(sol.duals.as_deref())
            .unwrap_or(0.0);
        out.push((station, price));
    }
    Ok(out)
}

/// Builds the relaxation for the cluster of `station` whose tasks are
/// `task_indices` (global indices into `tasks`).
///
/// Returns `None` when the cluster has no tasks.
///
/// # Errors
///
/// Propagates LP-construction and substrate errors.
pub fn build_cluster_relaxation(
    system: &MecSystem,
    tasks: &[HolisticTask],
    costs: &CostTable,
    station: StationId,
    task_indices: &[usize],
) -> Result<Option<ClusterRelaxation>, AssignError> {
    if task_indices.is_empty() {
        return Ok(None);
    }
    let ct = task_indices.len();
    let mut lp = LpProblem::new(3 * ct);

    // Objective: Σ E_ijl x_ijl.
    let mut objective = vec![0.0; 3 * ct];
    for (k, &idx) in task_indices.iter().enumerate() {
        for site in ExecutionSite::ALL {
            objective[3 * k + site.index()] = costs.at(idx, site).energy.value();
        }
    }
    lp.set_objective(objective)?;

    // Bounds: the presolved deadline block A₁. If no site is deadline-
    // feasible even fractionally, keep the fastest site open so C4 stays
    // satisfiable; Step 4 will cancel the task after rounding.
    for (k, &idx) in task_indices.iter().enumerate() {
        let deadline = tasks[idx].deadline;
        let mut ubs = [0.0f64; 3];
        for site in ExecutionSite::ALL {
            let t = costs.at(idx, site).time;
            ubs[site.index()] = if t.value() <= 0.0 {
                1.0
            } else {
                (deadline.value() / t.value()).min(1.0)
            };
        }
        if ubs.iter().sum::<f64>() < 1.0 {
            let fastest = ExecutionSite::ALL
                .iter()
                .min_by(|a, b| {
                    costs
                        .at(idx, **a)
                        .time
                        .partial_cmp(&costs.at(idx, **b).time)
                        .expect("finite times")
                })
                .copied()
                .expect("three sites");
            ubs[fastest.index()] = 1.0;
        }
        for site in ExecutionSite::ALL {
            lp.set_bounds(3 * k + site.index(), 0.0, ubs[site.index()])?;
        }
    }

    // C2: per-device capacity rows (block A₂). Owners are grouped by a
    // stable sort on the device id instead of a `BTreeMap`, which keeps
    // the former map's row order exactly — devices ascending, and each
    // device's `k` terms ascending because `enumerate` order survives
    // the stable sort.
    let mut owner_of_k: Vec<(DeviceId, usize)> = task_indices
        .iter()
        .enumerate()
        .map(|(k, &idx)| (tasks[idx].owner, k))
        .collect();
    owner_of_k.sort_by_key(|&(owner, _)| owner.0);
    let mut device_rows = Vec::new();
    let mut g = 0;
    while g < owner_of_k.len() {
        let device = owner_of_k[g].0;
        let mut terms: Vec<(usize, f64)> = Vec::new();
        while g < owner_of_k.len() && owner_of_k[g].0 == device {
            let k = owner_of_k[g].1;
            terms.push((3 * k, tasks[task_indices[k]].resource.value()));
            g += 1;
        }
        let cap = system.device(device)?.max_resource.value();
        let row = lp.add_constraint(terms, ConstraintSense::Le, cap)?;
        device_rows.push((device, row));
    }

    // C3: the station capacity row (block A₃).
    let station_cap = system.station(station)?.max_resource.value();
    let station_terms: Vec<(usize, f64)> = (0..ct)
        .map(|k| (3 * k + 1, tasks[task_indices[k]].resource.value()))
        .collect();
    let station_row = lp.add_constraint(station_terms, ConstraintSense::Le, station_cap)?;

    // C4: Σ_l x_ijl = 1 per task (block A₄).
    for k in 0..ct {
        lp.add_constraint(
            vec![(3 * k, 1.0), (3 * k + 1, 1.0), (3 * k + 2, 1.0)],
            ConstraintSense::Eq,
            1.0,
        )?;
    }

    Ok(Some(ClusterRelaxation {
        lp,
        task_indices: task_indices.to_vec(),
        device_rows,
        station_row,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hta::cluster_task_indices;
    use linprog::{solve, LpStatus, Solver};
    use mec_sim::workload::ScenarioConfig;

    fn setup() -> (mec_sim::workload::Scenario, CostTable) {
        let s = ScenarioConfig::paper_defaults(10).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        (s, costs)
    }

    #[test]
    fn relaxation_has_expected_shape() {
        let (s, costs) = setup();
        let clusters = cluster_task_indices(&s.system, &s.tasks).unwrap();
        let (st, idxs) = &clusters[0];
        let rel = build_cluster_relaxation(&s.system, &s.tasks, &costs, *st, idxs)
            .unwrap()
            .unwrap();
        let ct = idxs.len();
        assert_eq!(rel.lp.num_vars(), 3 * ct);
        let devices_with_tasks = s
            .system
            .cluster(*st)
            .unwrap()
            .iter()
            .filter(|d| s.tasks.iter().any(|t| t.owner == **d))
            .count();
        // rows: device C2 rows + 1 station row + ct equality rows.
        assert_eq!(rel.lp.num_constraints(), devices_with_tasks + 1 + ct);
        assert_eq!(rel.var(2, ExecutionSite::Cloud), 8);
    }

    #[test]
    fn relaxation_is_feasible_and_bounded() {
        let (s, costs) = setup();
        for (st, idxs) in cluster_task_indices(&s.system, &s.tasks).unwrap() {
            let Some(rel) =
                build_cluster_relaxation(&s.system, &s.tasks, &costs, st, &idxs).unwrap()
            else {
                continue;
            };
            let sol = solve(&rel.lp, Solver::Simplex).unwrap();
            assert_eq!(sol.status, LpStatus::Optimal, "cluster {st}");
            // Fractions form a distribution per task.
            let x = rel.fractional_matrix(&sol.x);
            for row in &x {
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-6, "C4 violated: {row:?}");
                assert!(row.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
            }
        }
    }

    #[test]
    fn lp_optimum_lower_bounds_any_integral_assignment() {
        let (s, costs) = setup();
        let clusters = cluster_task_indices(&s.system, &s.tasks).unwrap();
        let (st, idxs) = &clusters[0];
        let rel = build_cluster_relaxation(&s.system, &s.tasks, &costs, *st, idxs)
            .unwrap()
            .unwrap();
        let sol = solve(&rel.lp, Solver::Simplex).unwrap();
        // The all-cloud integral point is feasible for the relaxation
        // (cloud is uncapacitated and every generated deadline admits at
        // least its fastest site... cloud may be infeasible for tight
        // deadlines, so compare with the all-cloud *objective* only:
        // lower bound property needs feasibility, so instead use the
        // trivially feasible fractional point? All-cloud respects C2/C3;
        // its deadline bounds may cap x_ij3 < 1, so only assert against
        // the relaxation's own optimum: any feasible integral point
        // costs >= optimum. Construct a greedy feasible integral point
        // from the LP fractional matrix by rounding to each task's
        // largest component and check its energy dominates the LP value.
        let x = rel.fractional_matrix(&sol.x);
        let mut rounded = 0.0;
        let mut sites = Vec::with_capacity(x.len());
        for (k, row) in x.iter().enumerate() {
            let best = (0..3).max_by(|&a, &b| row[a].total_cmp(&row[b])).unwrap();
            sites.push(ExecutionSite::ALL[best]);
            rounded += costs
                .at(rel.task_indices[k], ExecutionSite::ALL[best])
                .energy
                .value();
        }
        // Unconditional lower bound: the LP cannot go below the sum of
        // per-task unconstrained minima (every C4 row forces one unit of
        // mass at cost >= min_l E_ijl).
        let per_task_minima: f64 = rel
            .task_indices
            .iter()
            .map(|&i| {
                ExecutionSite::ALL
                    .iter()
                    .map(|&site| costs.at(i, site).energy.value())
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        assert!(sol.objective >= per_task_minima - 1e-6);
        // The LP optimum lower-bounds every *feasible* integral point.
        // The arg-max rounding may violate C2/C3 or the fractional
        // deadline caps of block A₁ (a unit indicator at a site whose
        // bound is deadline/t < 1), in which case its energy can
        // legitimately dip below the constrained optimum, so only assert
        // the bound when the rounded point is feasible.
        let feasible = {
            let mut station_load = 0.0;
            let mut device_load: std::collections::BTreeMap<_, f64> =
                std::collections::BTreeMap::new();
            for (k, &site) in sites.iter().enumerate() {
                let task = &s.tasks[rel.task_indices[k]];
                match site {
                    ExecutionSite::Device => {
                        *device_load.entry(task.owner).or_default() += task.resource.value();
                    }
                    ExecutionSite::Station => station_load += task.resource.value(),
                    ExecutionSite::Cloud => {}
                }
            }
            let within_deadlines = sites.iter().enumerate().all(|(k, &site)| {
                let idx = rel.task_indices[k];
                costs.feasible(idx, site, s.tasks[idx].deadline)
            });
            within_deadlines
                && station_load <= s.system.station(*st).unwrap().max_resource.value() + 1e-9
                && device_load.iter().all(|(&d, &load)| {
                    load <= s.system.device(d).unwrap().max_resource.value() + 1e-9
                })
        };
        if feasible {
            assert!(rounded >= sol.objective - 1e-6);
        }
        // Lemma 1: rounding loses at most a factor 3 vs the LP optimum.
        assert!(rounded <= 3.0 * sol.objective + 1e-6, "Lemma 1 violated");
    }

    #[test]
    fn shadow_prices_reflect_capacity_pressure() {
        // Slack stations: zero price. Starved stations: negative price.
        let mut cfg = ScenarioConfig::paper_defaults(13);
        cfg.tasks_total = 150;
        cfg.device_resource_mb = 2.0; // push work to the stations
        cfg.station_resource_mb = 30.0; // and make the stations scarce
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let prices = station_capacity_prices(&s.system, &s.tasks, &costs).unwrap();
        assert_eq!(prices.len(), s.system.num_stations());
        assert!(prices.iter().all(|(_, p)| *p <= 1e-9), "prices nonpositive");
        assert!(
            prices.iter().any(|(_, p)| *p < -1e-12),
            "starved stations must carry a negative shadow price: {prices:?}"
        );

        // With abundant station capacity the C3 rows go slack.
        let mut cfg2 = ScenarioConfig::paper_defaults(13);
        cfg2.tasks_total = 60;
        cfg2.station_resource_mb = 100_000.0;
        let s2 = cfg2.generate().unwrap();
        let costs2 = CostTable::build(&s2.system, &s2.tasks).unwrap();
        let slack = station_capacity_prices(&s2.system, &s2.tasks, &costs2).unwrap();
        assert!(slack.iter().all(|(_, p)| p.abs() < 1e-9), "{slack:?}");
    }

    #[test]
    fn empty_cluster_yields_none() {
        let (s, costs) = setup();
        let rel = build_cluster_relaxation(&s.system, &s.tasks, &costs, StationId(0), &[]).unwrap();
        assert!(rel.is_none());
    }
}
