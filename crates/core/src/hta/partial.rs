//! **Partial offloading** (extension): the fractional-split model of the
//! related work — Hermes-style latency-optimal splitting (paper ref \[25\])
//! and the DVS partial-offloading formulation of Wang et al. \[26\].
//!
//! Instead of the paper's *binary* choice (`x_ijl ∈ {0,1}`), a fraction
//! `φ ∈ [0,1]` of a task's computation runs on the device while the
//! remaining `1−φ` (with its share of the input data) is shipped to the
//! base station; the two legs run in parallel. Under the linear cycle
//! model the optimal split has a closed form:
//!
//! * local leg time `φ·L` with `L = λX/f_i`, remote leg time `(1−φ)·K`
//!   with `K = X/r↑ + λX/f_s + ηX/r↓`, both after the external-data
//!   retrieval prelude;
//! * the deadline induces a feasible interval
//!   `[max(0, 1−(T−t_ret)/K), min(1, (T−t_ret)/L)]`;
//! * energy is affine in `φ`, so the optimum sits at whichever endpoint
//!   the sign of `dE/dφ` selects.
//!
//! This gives the paper's binary LP-HTA a fractional lower-bound
//! comparator (`ext_partial`), quantifying how much the holistic
//! all-or-nothing restriction actually costs. Capacity constraints are
//! not modeled — the references are single-user formulations.

use crate::error::AssignError;
use mec_sim::task::HolisticTask;
use mec_sim::topology::MecSystem;
use mec_sim::transfer;
use mec_sim::units::{Joules, Seconds};

/// The optimal fractional split of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialSplit {
    /// Fraction of computation (and input data) processed locally.
    pub phi: f64,
    /// End-to-end completion time at this split.
    pub time: Seconds,
    /// System energy at this split.
    pub energy: Joules,
}

/// Outcome of splitting a whole task list.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialPlan {
    /// Per-task splits; `None` where no feasible split exists (the task
    /// would be cancelled).
    pub splits: Vec<Option<PartialSplit>>,
}

impl PartialPlan {
    /// Total energy over the feasible splits.
    pub fn total_energy(&self) -> Joules {
        self.splits.iter().flatten().map(|s| s.energy).sum()
    }

    /// Mean completion time over the feasible splits.
    pub fn mean_latency(&self) -> Seconds {
        let n = self.splits.iter().flatten().count();
        if n == 0 {
            return Seconds::ZERO;
        }
        self.splits
            .iter()
            .flatten()
            .map(|s| s.time)
            .sum::<Seconds>()
            / n as f64
    }

    /// Fraction of tasks with no feasible split.
    pub fn unsatisfied_rate(&self) -> f64 {
        if self.splits.is_empty() {
            return 0.0;
        }
        let bad = self.splits.iter().filter(|s| s.is_none()).count();
        bad as f64 / self.splits.len() as f64
    }
}

/// Computes the optimal split for one task (device + its base station).
///
/// Returns `None` when no `φ ∈ [0,1]` meets the deadline.
///
/// # Errors
///
/// Propagates task validation and topology errors.
pub fn optimal_split(
    system: &MecSystem,
    task: &HolisticTask,
) -> Result<Option<PartialSplit>, AssignError> {
    task.validate()?;
    let owner = system.device(task.owner)?;
    let station = system.station(owner.station)?;
    let input = task.input_size();
    let cycles = system.cycle_model.cycles(input, task.complexity);
    let result = system.result_model.result_size(input);

    // External-data retrieval prelude (same as the l = 1 path).
    let (t_ret, e_ret) = match task.external_source {
        Some(src) => {
            let src_dev = system.device(src)?;
            let cross = !system.same_cluster(task.owner, src)?;
            let mut t = transfer::upload_time(&src_dev.link, task.external_size)
                + transfer::download_time(&owner.link, task.external_size);
            let mut e = transfer::upload_energy(&src_dev.link, task.external_size)
                + transfer::download_energy(&owner.link, task.external_size);
            if cross {
                let bb = system.backhaul.station_to_station;
                t += bb.transfer_time(task.external_size);
                e += bb.transfer_energy(task.external_size);
            }
            (t, e)
        }
        None => (Seconds::ZERO, Joules::ZERO),
    };

    let budget = task.deadline - t_ret;
    if budget.value() <= 0.0 {
        return Ok(None);
    }

    // Leg coefficients.
    let l_coef = (cycles / owner.cpu).value(); // local time per unit φ
    let k_coef = (transfer::upload_time(&owner.link, input)
        + cycles / station.cpu
        + transfer::download_time(&owner.link, result))
    .value(); // remote time per unit (1-φ)

    let phi_hi = if l_coef > 0.0 {
        (budget.value() / l_coef).min(1.0)
    } else {
        1.0
    };
    let phi_lo = if k_coef > 0.0 {
        (1.0 - budget.value() / k_coef).max(0.0)
    } else {
        0.0
    };
    if phi_lo > phi_hi {
        return Ok(None);
    }

    // Energy is affine in φ: device compute grows, radio shrinks.
    let e_compute_full = system
        .cycle_model
        .device_energy(input, task.complexity, owner.cpu)
        .value();
    let e_radio_full = (transfer::upload_energy(&owner.link, input)
        + transfer::download_energy(&owner.link, result))
    .value();
    let slope = e_compute_full - e_radio_full; // dE/dφ
    let phi = if slope <= 0.0 { phi_hi } else { phi_lo };

    let time = t_ret + Seconds::new((phi * l_coef).max((1.0 - phi) * k_coef));
    let energy =
        e_ret + Joules::new(phi * e_compute_full) + Joules::new((1.0 - phi) * e_radio_full);
    Ok(Some(PartialSplit { phi, time, energy }))
}

/// Splits every task in a list.
///
/// # Errors
///
/// Propagates per-task errors.
pub fn partial_offload_plan(
    system: &MecSystem,
    tasks: &[HolisticTask],
) -> Result<PartialPlan, AssignError> {
    let splits = tasks
        .iter()
        .map(|t| optimal_split(system, t))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(PartialPlan { splits })
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_struct!(PartialSplit { phi, time, energy });
djson::impl_json_struct!(PartialPlan { splits });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::CostTable;
    use mec_sim::task::ExecutionSite;
    use mec_sim::units::Bytes;
    use mec_sim::workload::ScenarioConfig;

    fn scenario(seed: u64) -> mec_sim::workload::Scenario {
        let mut cfg = ScenarioConfig::paper_defaults(seed);
        cfg.tasks_total = 60;
        cfg.generate().unwrap()
    }

    #[test]
    fn split_is_feasible_and_within_deadline() {
        let s = scenario(131);
        for task in &s.tasks {
            let split = optimal_split(&s.system, task).unwrap();
            let Some(split) = split else { continue };
            assert!((0.0..=1.0).contains(&split.phi), "phi {}", split.phi);
            assert!(
                split.time <= task.deadline + Seconds::new(1e-9),
                "{}: {} > {}",
                task.id,
                split.time,
                task.deadline
            );
        }
    }

    #[test]
    fn fractional_never_loses_to_binary_endpoints() {
        // φ = 1 reproduces the pure-local cost and φ = 0 the pure-station
        // cost, so the optimal split is at most the cheaper *feasible*
        // endpoint.
        let s = scenario(132);
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        for (idx, task) in s.tasks.iter().enumerate() {
            let Some(split) = optimal_split(&s.system, task).unwrap() else {
                continue;
            };
            let mut endpoints = Vec::new();
            for site in [ExecutionSite::Device, ExecutionSite::Station] {
                if costs.feasible(idx, site, task.deadline) {
                    endpoints.push(costs.at(idx, site).energy.value());
                }
            }
            if let Some(best) = endpoints
                .iter()
                .cloned()
                .fold(None::<f64>, |m, v| Some(m.map_or(v, |x| x.min(v))))
            {
                assert!(
                    split.energy.value() <= best + 1e-6,
                    "{}: split {} > best endpoint {best}",
                    task.id,
                    split.energy
                );
            }
        }
    }

    #[test]
    fn pure_local_split_matches_site_device_cost() {
        // With a generous deadline and the paper constants, compute is
        // cheaper than radio, so φ* = 1 and the split equals the l = 1
        // cost exactly.
        let s = scenario(133);
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let mut task = s.tasks[0];
        task.deadline = Seconds::new(1e6);
        let split = optimal_split(&s.system, &task).unwrap().unwrap();
        assert!((split.phi - 1.0).abs() < 1e-12);
        let device = costs.at(0, ExecutionSite::Device);
        assert!((split.energy.value() - device.energy.value()).abs() < 1e-9);
    }

    #[test]
    fn impossible_deadline_returns_none() {
        let s = scenario(134);
        let mut task = s.tasks[0];
        task.deadline = Seconds::new(1e-9);
        assert!(optimal_split(&s.system, &task).unwrap().is_none());
    }

    #[test]
    fn tight_deadline_forces_a_real_split() {
        // Find a task where neither pure endpoint meets a tightened
        // deadline but a split does: the whole point of partial
        // offloading.
        let s = scenario(135);
        let mut found = false;
        for task in &s.tasks {
            let prelude = match task.external_source {
                Some(src) => {
                    let src_dev = s.system.device(src).unwrap();
                    let owner = s.system.device(task.owner).unwrap();
                    let mut t = mec_sim::transfer::upload_time(&src_dev.link, task.external_size)
                        + mec_sim::transfer::download_time(&owner.link, task.external_size);
                    if !s.system.same_cluster(task.owner, src).unwrap() {
                        t += s
                            .system
                            .backhaul
                            .station_to_station
                            .transfer_time(task.external_size);
                    }
                    t.value()
                }
                None => 0.0,
            };
            let owner = s.system.device(task.owner).unwrap();
            let station = s.system.station(owner.station).unwrap();
            let input = task.input_size();
            let cycles = s.system.cycle_model.cycles(input, task.complexity);
            let l = (cycles / owner.cpu).value();
            let k = (mec_sim::transfer::upload_time(&owner.link, input)
                + cycles / station.cpu
                + mec_sim::transfer::download_time(
                    &owner.link,
                    s.system.result_model.result_size(input),
                ))
            .value();
            // A deadline below both pure-leg times but above the parallel
            // optimum l·k/(l+k), shifted by the retrieval prelude.
            let parallel_opt = l * k / (l + k);
            let deadline = prelude + (parallel_opt + l.min(k)) / 2.0;
            if deadline - prelude <= parallel_opt {
                continue;
            }
            let mut t = *task;
            t.deadline = Seconds::new(deadline);
            let split = optimal_split(&s.system, &t).unwrap();
            if let Some(split) = split {
                if split.phi > 0.0 && split.phi < 1.0 {
                    found = true;
                    assert!(split.time.value() <= deadline + 1e-9);
                    break;
                }
                let _ = split;
            }
        }
        assert!(found, "no task admitted a strict interior split");
    }

    #[test]
    fn plan_statistics() {
        let s = scenario(136);
        let plan = partial_offload_plan(&s.system, &s.tasks).unwrap();
        assert_eq!(plan.splits.len(), s.tasks.len());
        assert!(plan.total_energy() > Joules::ZERO);
        assert!(plan.mean_latency() > Seconds::ZERO);
        assert!((0.0..=1.0).contains(&plan.unsatisfied_rate()));
        let empty = PartialPlan { splits: vec![] };
        assert_eq!(empty.unsatisfied_rate(), 0.0);
        assert_eq!(empty.mean_latency(), Seconds::ZERO);
        let _ = Bytes::ZERO; // keep the import exercised in all cfgs
    }
}
