//! Exact HTA optimum via branch-and-bound, for small instances.
//!
//! The HTA problem is NP-complete (Theorem 1), so this is exponential in
//! the worst case; with best-first site ordering and an admissible
//! lower bound it handles the instance sizes used to verify LP-HTA's
//! empirical approximation ratio (tens of tasks per cluster).
//!
//! Semantics follow the problem definition of Section II.C exactly: every
//! task must be assigned (C4), deadlines (C1) and capacities (C2/C3) are
//! hard, and the objective is total energy. Instances where some task has
//! no deadline-feasible site are *infeasible* (the definition has no
//! cancellation), reported as `None`.

use crate::assignment::{Assignment, Decision};
use crate::costs::CostTable;
use crate::error::AssignError;
use crate::hta::cluster_task_indices;
use mec_sim::task::{ExecutionSite, HolisticTask};
use mec_sim::topology::MecSystem;

/// Branch-and-bound exact solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactBnB {
    /// Refuses clusters with more tasks than this (protects against
    /// accidental exponential blowups in benchmarks).
    pub max_cluster_tasks: usize,
}

impl Default for ExactBnB {
    fn default() -> Self {
        ExactBnB {
            max_cluster_tasks: 24,
        }
    }
}

impl ExactBnB {
    /// Finds the minimum-energy feasible assignment, or `None` when the
    /// instance is infeasible (some task has no feasible placement).
    ///
    /// # Errors
    ///
    /// Returns [`AssignError::Unsupported`] when a cluster exceeds
    /// [`ExactBnB::max_cluster_tasks`], and propagates substrate errors.
    pub fn solve(
        &self,
        system: &MecSystem,
        tasks: &[HolisticTask],
        costs: &CostTable,
    ) -> Result<Option<(Assignment, f64)>, AssignError> {
        if tasks.len() != costs.len() {
            return Err(AssignError::LengthMismatch {
                tasks: tasks.len(),
                other: costs.len(),
            });
        }
        let mut assignment = Assignment::new(vec![Decision::Cancelled; tasks.len()]);
        let mut total = 0.0;
        for (station, idxs) in cluster_task_indices(system, tasks)? {
            if idxs.is_empty() {
                continue;
            }
            if idxs.len() > self.max_cluster_tasks {
                return Err(AssignError::Unsupported {
                    algorithm: "ExactBnB",
                    reason: format!(
                        "cluster {station} has {} tasks (limit {})",
                        idxs.len(),
                        self.max_cluster_tasks
                    ),
                });
            }
            let max_s = system.station(station)?.max_resource.value();
            match solve_cluster(system, tasks, costs, &idxs, max_s)? {
                Some((sites, energy)) => {
                    for (k, &idx) in idxs.iter().enumerate() {
                        assignment.set(idx, Decision::Assigned(sites[k]));
                    }
                    total += energy;
                }
                None => return Ok(None),
            }
        }
        Ok(Some((assignment, total)))
    }
}

struct Search<'a> {
    tasks: &'a [HolisticTask],
    costs: &'a CostTable,
    /// Cluster-local order of global task indices (largest resource
    /// first, so capacity conflicts surface early).
    order: Vec<usize>,
    /// Per remaining suffix: sum of each task's cheapest feasible energy
    /// (capacity-relaxed) — an admissible lower bound.
    suffix_lb: Vec<f64>,
    device_free: Vec<f64>,
    station_free: f64,
    best_energy: f64,
    best_sites: Option<Vec<ExecutionSite>>,
    current: Vec<ExecutionSite>,
}

fn solve_cluster(
    system: &MecSystem,
    tasks: &[HolisticTask],
    costs: &CostTable,
    idxs: &[usize],
    max_s: f64,
) -> Result<Option<(Vec<ExecutionSite>, f64)>, AssignError> {
    // Order: largest resource first.
    let mut order = idxs.to_vec();
    order.sort_by(|&a, &b| {
        tasks[b]
            .resource
            .value()
            .total_cmp(&tasks[a].resource.value())
    });

    // Cheapest deadline-feasible energy per task; infeasible → whole
    // cluster (and instance) infeasible.
    let mut cheapest = Vec::with_capacity(order.len());
    for &idx in &order {
        let best = ExecutionSite::ALL
            .iter()
            .filter(|&&s| costs.feasible(idx, s, tasks[idx].deadline))
            .map(|&s| costs.at(idx, s).energy.value())
            .fold(f64::INFINITY, f64::min);
        if !best.is_finite() {
            return Ok(None);
        }
        cheapest.push(best);
    }
    let mut suffix_lb = vec![0.0; order.len() + 1];
    for k in (0..order.len()).rev() {
        suffix_lb[k] = suffix_lb[k + 1] + cheapest[k];
    }

    let device_free: Vec<f64> = system
        .devices()
        .iter()
        .map(|d| d.max_resource.value())
        .collect();

    let mut search = Search {
        tasks,
        costs,
        order,
        suffix_lb,
        device_free,
        station_free: max_s,
        best_energy: f64::INFINITY,
        best_sites: None,
        current: Vec::new(),
    };
    search.recurse(0, 0.0);

    let Some(sites_in_order) = search.best_sites else {
        return Ok(None);
    };
    // Map back from search order to the idxs order.
    let mut by_idx = std::collections::HashMap::new();
    for (k, &idx) in search.order.iter().enumerate() {
        by_idx.insert(idx, sites_in_order[k]);
    }
    let sites: Vec<ExecutionSite> = idxs.iter().map(|i| by_idx[i]).collect();
    Ok(Some((sites, search.best_energy)))
}

impl Search<'_> {
    fn recurse(&mut self, depth: usize, energy: f64) {
        if energy + self.suffix_lb[depth] >= self.best_energy {
            return; // admissible bound: no improvement possible
        }
        if depth == self.order.len() {
            self.best_energy = energy;
            self.best_sites = Some(self.current.clone());
            return;
        }
        let idx = self.order[depth];
        let task = &self.tasks[idx];
        let need = task.resource.value();

        // Try sites cheapest-first for fast incumbents.
        let mut sites: Vec<ExecutionSite> = ExecutionSite::ALL
            .iter()
            .filter(|&&s| self.costs.feasible(idx, s, task.deadline))
            .copied()
            .collect();
        sites.sort_by(|&a, &b| {
            self.costs
                .at(idx, a)
                .energy
                .value()
                .total_cmp(&self.costs.at(idx, b).energy.value())
        });

        for site in sites {
            let ok = match site {
                ExecutionSite::Device => self.device_free[task.owner.0] >= need,
                ExecutionSite::Station => self.station_free >= need,
                ExecutionSite::Cloud => true,
            };
            if !ok {
                continue;
            }
            match site {
                ExecutionSite::Device => self.device_free[task.owner.0] -= need,
                ExecutionSite::Station => self.station_free -= need,
                ExecutionSite::Cloud => {}
            }
            self.current.push(site);
            self.recurse(depth + 1, energy + self.costs.at(idx, site).energy.value());
            self.current.pop();
            match site {
                ExecutionSite::Device => self.device_free[task.owner.0] += need,
                ExecutionSite::Station => self.station_free += need,
                ExecutionSite::Cloud => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hta::{HtaAlgorithm, LpHta};
    use crate::metrics::{capacity_usage, evaluate_assignment};
    use mec_sim::units::Bytes;
    use mec_sim::workload::ScenarioConfig;

    fn small_scenario(seed: u64) -> (mec_sim::workload::Scenario, CostTable) {
        let mut cfg = ScenarioConfig::paper_defaults(seed);
        cfg.num_stations = 2;
        cfg.devices_per_station = 3;
        cfg.tasks_total = 12;
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        (s, costs)
    }

    #[test]
    fn exact_solution_is_feasible() {
        let (s, costs) = small_scenario(41);
        let (a, energy) = ExactBnB::default()
            .solve(&s.system, &s.tasks, &costs)
            .unwrap()
            .expect("feasible instance");
        assert!(a.cancelled().is_empty());
        let usage = capacity_usage(&s.system, &s.tasks, &a).unwrap();
        assert!(usage.within_limits(&s.system, Bytes::new(1e-6)));
        for (idx, task) in s.tasks.iter().enumerate() {
            let site = a.decision(idx).site().unwrap();
            assert!(costs.feasible(idx, site, task.deadline));
        }
        let m = evaluate_assignment(&s.tasks, &costs, &a).unwrap();
        assert!((m.total_energy.value() - energy).abs() < 1e-9);
    }

    #[test]
    fn exact_lower_bounds_lp_hta() {
        for seed in [42, 43, 44, 45] {
            let (s, costs) = small_scenario(seed);
            let Some((_, opt)) = ExactBnB::default()
                .solve(&s.system, &s.tasks, &costs)
                .unwrap()
            else {
                continue;
            };
            let (a, report) = LpHta::paper()
                .assign_with_report(&s.system, &s.tasks, &costs)
                .unwrap();
            let m = evaluate_assignment(&s.tasks, &costs, &a).unwrap();
            // Only compare when LP-HTA kept every task (energy of a
            // cancelled task is not charged, which would fake a win).
            if a.cancelled().is_empty() {
                assert!(
                    m.total_energy.value() >= opt - 1e-6,
                    "seed {seed}: LP-HTA beat the optimum?!"
                );
                let ratio = m.total_energy.value() / opt;
                assert!(
                    ratio <= report.ratio_bound + 1e-9,
                    "seed {seed}: empirical ratio {ratio} exceeds certificate {}",
                    report.ratio_bound
                );
            }
            // The LP relaxation lower-bounds the optimum.
            assert!(report.lp_objective <= opt + 1e-6);
        }
    }

    #[test]
    fn infeasible_deadlines_reported_as_none() {
        let (mut s, _) = small_scenario(46);
        s.tasks[0].deadline = mec_sim::units::Seconds::new(1e-12);
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let res = ExactBnB::default()
            .solve(&s.system, &s.tasks, &costs)
            .unwrap();
        assert!(res.is_none());
    }

    #[test]
    fn cluster_size_limit_is_enforced() {
        let (s, costs) = small_scenario(47);
        let tiny = ExactBnB {
            max_cluster_tasks: 2,
        };
        assert!(matches!(
            tiny.solve(&s.system, &s.tasks, &costs),
            Err(AssignError::Unsupported { .. })
        ));
    }

    #[test]
    fn exact_beats_or_matches_every_heuristic() {
        let (s, costs) = small_scenario(48);
        let Some((_, opt)) = ExactBnB::default()
            .solve(&s.system, &s.tasks, &costs)
            .unwrap()
        else {
            panic!("expected feasible");
        };
        {
            let algo = &LpHta::paper() as &dyn HtaAlgorithm;
            let a = algo.assign(&s.system, &s.tasks, &costs).unwrap();
            if a.cancelled().is_empty() {
                let m = evaluate_assignment(&s.tasks, &costs, &a).unwrap();
                assert!(m.total_energy.value() >= opt - 1e-6, "{}", algo.name());
            }
        }
    }
}
