//! Assignment results: the `x_ijl` decision of every task, including the
//! paper's "cancel the task and inform the user" outcome.

use crate::error::AssignError;
use mec_sim::task::{ExecutionSite, HolisticTask};

/// The decision for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Run at the given subsystem (`x_ijl = 1`).
    Assigned(ExecutionSite),
    /// No feasible placement; the user is informed (paper Steps 4–6).
    Cancelled,
}

impl Decision {
    /// The site, when assigned.
    pub fn site(self) -> Option<ExecutionSite> {
        match self {
            Decision::Assigned(s) => Some(s),
            Decision::Cancelled => None,
        }
    }
}

/// Decisions for a task list, parallel to the input `tasks` slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    decisions: Vec<Decision>,
}

impl Assignment {
    /// Builds an assignment from per-task decisions.
    pub fn new(decisions: Vec<Decision>) -> Assignment {
        Assignment { decisions }
    }

    /// An assignment sending every task to one fixed site.
    pub fn uniform(len: usize, site: ExecutionSite) -> Assignment {
        Assignment {
            decisions: vec![Decision::Assigned(site); len],
        }
    }

    /// Number of decisions (equals the task count).
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// True iff there are no decisions.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// The decision of task `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range; use [`Assignment::try_decision`]
    /// for indices that are not already validated against the task list.
    pub fn decision(&self, idx: usize) -> Decision {
        self.try_decision(idx)
            .unwrap_or_else(|e| panic!("Assignment::decision: {e}"))
    }

    /// The decision of task `idx`, with a typed error out of range —
    /// reachable from repair call sites handed a decisions vector
    /// shorter than the task list.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError::IndexOutOfRange`] when `idx` has no
    /// decision.
    pub fn try_decision(&self, idx: usize) -> Result<Decision, AssignError> {
        self.decisions
            .get(idx)
            .copied()
            .ok_or(AssignError::IndexOutOfRange {
                what: "assignment decisions",
                index: idx,
                len: self.decisions.len(),
            })
    }

    /// All decisions, parallel to the task list.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Mutable access for repair passes.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range; repair passes validate lengths up
    /// front via [`Assignment::try_decision`]/length checks.
    pub(crate) fn set(&mut self, idx: usize, d: Decision) {
        self.try_set(idx, d)
            .unwrap_or_else(|e| panic!("Assignment::set: {e}"))
    }

    /// Replaces the decision of task `idx`, with a typed error out of
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError::IndexOutOfRange`] when `idx` has no
    /// decision.
    pub(crate) fn try_set(&mut self, idx: usize, d: Decision) -> Result<(), AssignError> {
        let len = self.decisions.len();
        match self.decisions.get_mut(idx) {
            Some(slot) => {
                *slot = d;
                Ok(())
            }
            None => Err(AssignError::IndexOutOfRange {
                what: "assignment decisions",
                index: idx,
                len,
            }),
        }
    }

    /// Indices of cancelled tasks.
    pub fn cancelled(&self) -> Vec<usize> {
        self.decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == Decision::Cancelled)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of tasks assigned to each site `(device, station, cloud)`.
    pub fn site_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for d in &self.decisions {
            if let Decision::Assigned(s) = d {
                counts[s.index()] += 1;
            }
        }
        counts
    }

    /// Pairs each assigned task with its site, skipping cancelled tasks —
    /// the format the discrete-event executor consumes.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError::LengthMismatch`] when `tasks` has a
    /// different length than the assignment.
    pub fn to_executable(
        &self,
        tasks: &[HolisticTask],
    ) -> Result<Vec<(HolisticTask, ExecutionSite)>, AssignError> {
        if tasks.len() != self.decisions.len() {
            return Err(AssignError::LengthMismatch {
                tasks: tasks.len(),
                other: self.decisions.len(),
            });
        }
        Ok(tasks
            .iter()
            .zip(self.decisions.iter())
            .filter_map(|(t, d)| d.site().map(|s| (*t, s)))
            .collect())
    }
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_enum!(Decision { Assigned(ExecutionSite), Cancelled });
djson::impl_json_struct!(Assignment { decisions });

#[cfg(test)]
mod tests {
    use super::*;
    use mec_sim::workload::ScenarioConfig;

    #[test]
    fn uniform_and_counts() {
        let a = Assignment::uniform(5, ExecutionSite::Cloud);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert_eq!(a.site_counts(), [0, 0, 5]);
        assert!(a.cancelled().is_empty());
    }

    #[test]
    fn cancellation_tracking() {
        let mut a = Assignment::uniform(3, ExecutionSite::Device);
        a.set(1, Decision::Cancelled);
        assert_eq!(a.cancelled(), vec![1]);
        assert_eq!(a.site_counts(), [2, 0, 0]);
        assert_eq!(a.decision(1).site(), None);
        assert_eq!(a.decision(0).site(), Some(ExecutionSite::Device));
    }

    #[test]
    fn to_executable_skips_cancelled() {
        let s = ScenarioConfig::paper_defaults(1).generate().unwrap();
        let mut a = Assignment::uniform(s.tasks.len(), ExecutionSite::Station);
        a.set(0, Decision::Cancelled);
        let exec = a.to_executable(&s.tasks).unwrap();
        assert_eq!(exec.len(), s.tasks.len() - 1);
        assert!(exec.iter().all(|(_, site)| *site == ExecutionSite::Station));
    }

    #[test]
    fn to_executable_checks_length() {
        let s = ScenarioConfig::paper_defaults(1).generate().unwrap();
        let a = Assignment::uniform(3, ExecutionSite::Device);
        assert!(a.to_executable(&s.tasks).is_err());
    }

    #[test]
    fn out_of_range_decision_is_a_typed_error() {
        let mut a = Assignment::uniform(3, ExecutionSite::Device);
        let err = a.try_decision(3).unwrap_err();
        assert!(
            matches!(
                err,
                AssignError::IndexOutOfRange {
                    index: 3,
                    len: 3,
                    ..
                }
            ),
            "{err}"
        );
        let err = a.try_set(7, Decision::Cancelled).unwrap_err();
        assert!(
            matches!(
                err,
                AssignError::IndexOutOfRange {
                    index: 7,
                    len: 3,
                    ..
                }
            ),
            "{err}"
        );
        assert!(a.try_decision(2).is_ok());
        assert!(a.try_set(2, Decision::Cancelled).is_ok());
        assert_eq!(a.decision(2), Decision::Cancelled);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn panicking_getter_reports_the_typed_message() {
        Assignment::uniform(2, ExecutionSite::Cloud).decision(5);
    }
}
