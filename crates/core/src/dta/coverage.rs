//! Coverages: the disjoint data division of Section IV.
//!
//! A [`Coverage`] assigns every required data item to exactly one device
//! that *owns* it (Definition 1 / Definition 2, conditions (1)–(2)):
//! `C_i ⊆ D ∩ D_i`, pairwise disjoint, `∪ C_i = D`. Whether the division
//! optimizes the largest share (DTA-Workload) or the device count
//! (DTA-Number) is the business of the division algorithms; the type here
//! checks and reports on any coverage.

use mec_sim::data::{DataItemId, DataUniverse, ItemSet};
use mec_sim::topology::{DeviceId, MecSystem};
use mec_sim::units::{Bytes, Seconds};
use std::fmt;

/// Why a coverage is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverageViolation {
    /// Two shares intersect.
    Overlap {
        /// First device.
        a: DeviceId,
        /// Second device.
        b: DeviceId,
    },
    /// A device was given an item it does not own.
    NotOwned {
        /// The device.
        device: DeviceId,
        /// The foreign item.
        item: DataItemId,
    },
    /// A device was given an item outside the required set `D`.
    OutsideRequired {
        /// The device.
        device: DeviceId,
        /// The stray item.
        item: DataItemId,
    },
    /// Required items remain uncovered.
    Uncovered {
        /// How many items are missing.
        missing: usize,
    },
}

impl fmt::Display for CoverageViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverageViolation::Overlap { a, b } => write!(f, "shares of {a} and {b} overlap"),
            CoverageViolation::NotOwned { device, item } => {
                write!(f, "{device} was assigned item {item} it does not own")
            }
            CoverageViolation::OutsideRequired { device, item } => {
                write!(
                    f,
                    "{device} was assigned item {item} outside the required set"
                )
            }
            CoverageViolation::Uncovered { missing } => {
                write!(f, "{missing} required items are uncovered")
            }
        }
    }
}

impl std::error::Error for CoverageViolation {}

/// A disjoint division of the required data over the devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    shares: Vec<ItemSet>,
}

impl Coverage {
    /// Wraps per-device shares (indexed by `DeviceId.0`). Use
    /// [`Coverage::validate`] to check the Section IV conditions.
    pub fn new(shares: Vec<ItemSet>) -> Coverage {
        Coverage { shares }
    }

    /// All shares, indexed by device.
    pub fn shares(&self) -> &[ItemSet] {
        &self.shares
    }

    /// One device's share.
    ///
    /// # Panics
    ///
    /// Panics if the device index is out of range.
    pub fn share(&self, device: DeviceId) -> &ItemSet {
        &self.shares[device.0]
    }

    /// Devices with nonempty shares — the paper's "involved" devices.
    pub fn involved_devices(&self) -> usize {
        self.shares.iter().filter(|s| !s.is_empty()).count()
    }

    /// Item count of the largest share (the min-max objective of
    /// Definition 1).
    pub fn max_share_len(&self) -> usize {
        self.shares.iter().map(ItemSet::len).max().unwrap_or(0)
    }

    /// Byte size of the largest share.
    pub fn max_share_size(&self, universe: &DataUniverse) -> Bytes {
        self.shares
            .iter()
            .map(|s| universe.set_size(s))
            .fold(Bytes::ZERO, Bytes::max)
    }

    /// Parallel processing time: each involved device chews through its
    /// share locally; the slowest device gates (the Section IV.A argument
    /// for uniform division).
    pub fn processing_time(&self, system: &MecSystem, universe: &DataUniverse) -> Seconds {
        self.shares
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, s)| {
                let device = &system.devices()[i];
                let bytes = universe.set_size(s);
                system.cycle_model.cycles(bytes, 1.0) / device.cpu
            })
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Checks conditions (1)–(2) of Definitions 1/2 against the universe
    /// and the required set.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoverageViolation`] found.
    pub fn validate(
        &self,
        universe: &DataUniverse,
        required: &ItemSet,
    ) -> Result<(), CoverageViolation> {
        let capacity = required.capacity();
        let mut union = ItemSet::new(capacity);
        for (i, share) in self.shares.iter().enumerate() {
            let device = DeviceId(i);
            if !union.is_disjoint(share) {
                // Find the earlier device it collides with for the report.
                for (j, other) in self.shares.iter().enumerate().take(i) {
                    if !other.is_disjoint(share) {
                        return Err(CoverageViolation::Overlap {
                            a: DeviceId(j),
                            b: device,
                        });
                    }
                }
            }
            union.union_with(share);
            if let Ok(holdings) = universe.holdings(device) {
                if let Some(item) = share.difference(holdings).iter().next() {
                    return Err(CoverageViolation::NotOwned { device, item });
                }
            }
            if let Some(item) = share.difference(required).iter().next() {
                return Err(CoverageViolation::OutsideRequired { device, item });
            }
        }
        let missing = required.difference(&union).len();
        if missing > 0 {
            return Err(CoverageViolation::Uncovered { missing });
        }
        Ok(())
    }
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_struct!(Coverage { shares });

#[cfg(test)]
mod tests {
    use super::*;
    use mec_sim::workload::DivisibleScenarioConfig;

    fn ids(v: &[usize]) -> impl Iterator<Item = DataItemId> + '_ {
        v.iter().map(|&i| DataItemId(i))
    }

    fn tiny_universe() -> DataUniverse {
        let sizes = vec![Bytes::from_kb(10.0); 4];
        let holdings = vec![
            ItemSet::from_ids(4, ids(&[0, 1, 2])),
            ItemSet::from_ids(4, ids(&[2, 3])),
        ];
        DataUniverse::new(sizes, holdings).unwrap()
    }

    #[test]
    fn valid_coverage_passes() {
        let u = tiny_universe();
        let required = ItemSet::full(4);
        let c = Coverage::new(vec![
            ItemSet::from_ids(4, ids(&[0, 1, 2])),
            ItemSet::from_ids(4, ids(&[3])),
        ]);
        assert!(c.validate(&u, &required).is_ok());
        assert_eq!(c.involved_devices(), 2);
        assert_eq!(c.max_share_len(), 3);
        assert_eq!(c.max_share_size(&u), Bytes::from_kb(30.0));
    }

    #[test]
    fn overlap_is_detected() {
        let u = tiny_universe();
        let required = ItemSet::full(4);
        let c = Coverage::new(vec![
            ItemSet::from_ids(4, ids(&[0, 1, 2])),
            ItemSet::from_ids(4, ids(&[2, 3])),
        ]);
        assert!(matches!(
            c.validate(&u, &required),
            Err(CoverageViolation::Overlap { .. })
        ));
    }

    #[test]
    fn foreign_items_are_detected() {
        let u = tiny_universe();
        let required = ItemSet::full(4);
        let c = Coverage::new(vec![
            ItemSet::from_ids(4, ids(&[0, 1, 3])), // device 0 doesn't own 3
            ItemSet::from_ids(4, ids(&[2])),
        ]);
        assert!(matches!(
            c.validate(&u, &required),
            Err(CoverageViolation::NotOwned { .. })
        ));
    }

    #[test]
    fn uncovered_items_are_detected() {
        let u = tiny_universe();
        let required = ItemSet::full(4);
        let c = Coverage::new(vec![
            ItemSet::from_ids(4, ids(&[0, 1])),
            ItemSet::from_ids(4, ids(&[3])),
        ]);
        assert_eq!(
            c.validate(&u, &required),
            Err(CoverageViolation::Uncovered { missing: 1 })
        );
    }

    #[test]
    fn outside_required_is_detected() {
        let u = tiny_universe();
        let required = ItemSet::from_ids(4, ids(&[0, 1]));
        let c = Coverage::new(vec![
            ItemSet::from_ids(4, ids(&[0, 1, 2])), // item 2 not required
            ItemSet::new(4),
        ]);
        assert!(matches!(
            c.validate(&u, &required),
            Err(CoverageViolation::OutsideRequired { .. })
        ));
    }

    #[test]
    fn processing_time_is_gated_by_slowest_share() {
        let s = DivisibleScenarioConfig::paper_defaults(50)
            .generate()
            .unwrap();
        // One device takes everything → worst possible balance.
        let required = s.required_universe();
        // Find a device owning at least one required item and give it all
        // it owns; spread the rest arbitrarily among owners.
        let n = s.system.num_devices();
        let mut shares = vec![ItemSet::new(s.universe.num_items()); n];
        for item in required.iter() {
            let owner = s.universe.owners(item)[0];
            shares[owner.0].insert(item);
        }
        let c = Coverage::new(shares);
        c.validate(&s.universe, &required).unwrap();
        let t = c.processing_time(&s.system, &s.universe);
        assert!(t > Seconds::ZERO);
        // Processing time equals the slowest per-device share time.
        let manual = c
            .shares()
            .iter()
            .enumerate()
            .map(|(i, sh)| {
                let bytes = s.universe.set_size(sh);
                s.system.cycle_model.cycles(bytes, 1.0) / s.system.devices()[i].cpu
            })
            .fold(Seconds::ZERO, Seconds::max);
        assert_eq!(t, manual);
    }
}
