//! Divisible Task Assignment (DTA): the Section IV algorithms.
//!
//! * [`coverage`] — the disjoint data-division type and its validity
//!   conditions (Definitions 1 and 2);
//! * [`division`] — the DTA-Workload and DTA-Number greedy algorithms,
//!   their exact references, and a rebalancing extension;
//! * [`rearrange`] — the Section IV.C task-rearrangement pipeline and the
//!   divisible→holistic conversion used by the Fig. 5 comparisons;
//! * [`aggregate_distributed`] — end-to-end distributed aggregation over
//!   a coverage, checked against the centralized answer.

pub mod coverage;
pub mod division;
pub mod rearrange;

pub use coverage::{Coverage, CoverageViolation};
pub use division::{
    divide_balanced, divide_min_devices, exact_min_devices, exact_min_max, rebalance,
};
pub use rearrange::{
    divisible_as_holistic, dta_device_shares, run_dta, run_dta_with_coverage, DivisionStrategy,
    DtaConfig, DtaReport,
};

use mec_sim::task::DivisibleTask;
use mec_sim::workload::DivisibleScenario;

/// Executes one divisible task distributedly over a coverage: every
/// involved device folds the values of its share slice into a partial,
/// the partials are merged at the owner, and the final answer is
/// returned. `values[i]` is the value of data item `i`.
///
/// Returns `None` when the operator has no answer for an empty input
/// (e.g. the mean of nothing).
///
/// # Panics
///
/// Panics if `values` is shorter than the universe.
pub fn aggregate_distributed(
    scenario: &DivisibleScenario,
    coverage: &Coverage,
    task: &DivisibleTask,
    values: &[f64],
) -> Option<f64> {
    let mut merged = task.op.identity();
    for share in coverage.shares() {
        let slice = share.intersection(&task.items);
        if slice.is_empty() {
            continue;
        }
        let mut partial = task.op.identity();
        for item in slice.iter() {
            partial.absorb(values[item.0]);
        }
        merged.merge(&partial);
    }
    let _ = scenario; // scenario kept in the signature for future routing
    merged.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_sim::workload::DivisibleScenarioConfig;

    #[test]
    fn distributed_aggregation_matches_centralized() {
        let s = DivisibleScenarioConfig::paper_defaults(90)
            .generate()
            .unwrap();
        let required = s.required_universe();
        let cov = divide_balanced(&s.universe, &required).unwrap();
        let values: Vec<f64> = (0..s.universe.num_items())
            .map(|i| (i as f64 * 0.37).sin() * 100.0)
            .collect();
        for task in &s.tasks {
            let distributed = aggregate_distributed(&s, &cov, task, &values);
            let central: Vec<f64> = task.items.iter().map(|d| values[d.0]).collect();
            let expect = task.op.apply(&central);
            match (distributed, expect) {
                (Some(a), Some(b)) => {
                    assert!(
                        (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                        "{}: {a} vs {b}",
                        task.id
                    )
                }
                (a, b) => assert_eq!(a, b, "{}", task.id),
            }
        }
    }
}
