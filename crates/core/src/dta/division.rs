//! The data-division greedy algorithms of Sections IV.A and IV.B, plus
//! exact references and a local-search refinement.
//!
//! * [`divide_balanced`] — **DTA-Workload** (Section IV.A): repeatedly
//!   pick the device with the *smallest* nonempty usable set
//!   `UD_i ∩ D`, hand it that whole set, shrink `D`. Ratio bound
//!   `1/(1−e⁻¹)` via the submodularity of the max-share objective
//!   (Theorem 3 / Corollary 2).
//! * [`divide_min_devices`] — **DTA-Number** (Section IV.B): classic
//!   greedy set cover — repeatedly pick the device with the *largest*
//!   usable set. `O(ln n)` ratio (Feige \[21\]).
//! * [`rebalance`] — an extension pass (not in the paper) that moves
//!   items off the largest share onto less-loaded owners until no move
//!   improves the min-max objective; used by the ablation bench.
//! * [`exact_min_max`], [`exact_min_devices`] — exponential exact
//!   references for small instances, used by tests to measure the
//!   greedy algorithms' empirical ratios.

use crate::dta::coverage::Coverage;
use crate::error::AssignError;
use mec_sim::data::{DataUniverse, HoldingsMatrix, ItemSet, OwnersIndex};
use mec_sim::topology::DeviceId;

/// DTA-Workload: the paper's Section IV.A greedy (smallest usable set
/// first), balancing the per-device workload.
///
/// # Errors
///
/// Returns [`AssignError::Unsupported`] when some required item is owned
/// by no device (cannot happen for universes built through
/// [`DataUniverse::new`], which enforces coverage).
pub fn divide_balanced(
    universe: &DataUniverse,
    required: &ItemSet,
) -> Result<Coverage, AssignError> {
    divide_greedy(universe, required, Selection::SmallestFirst)
}

/// DTA-Number: the paper's Section IV.B greedy set cover (largest usable
/// set first), minimizing involved devices.
///
/// # Errors
///
/// Same conditions as [`divide_balanced`].
pub fn divide_min_devices(
    universe: &DataUniverse,
    required: &ItemSet,
) -> Result<Coverage, AssignError> {
    divide_greedy(universe, required, Selection::LargestFirst)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Selection {
    SmallestFirst,
    LargestFirst,
}

/// Rejects item sets built for a different universe before any bitset
/// operation can hit a capacity-mismatch assertion.
fn check_universe(
    algorithm: &'static str,
    universe: &DataUniverse,
    set: &ItemSet,
) -> Result<(), AssignError> {
    if set.capacity() != universe.num_items() {
        return Err(AssignError::UniverseMismatch {
            algorithm,
            expected: universe.num_items(),
            found: set.capacity(),
        });
    }
    Ok(())
}

fn divide_greedy(
    universe: &DataUniverse,
    required: &ItemSet,
    selection: Selection,
) -> Result<Coverage, AssignError> {
    check_universe("data division", universe, required)?;
    let _timer = mec_obs::span("dta/division");
    let n = universe.num_devices();
    let mut residual = required.clone();
    let mut shares = vec![ItemSet::new(required.capacity()); n];

    // Word-major holdings matrix plus incrementally maintained usable
    // counts `|D_i ∩ residual|` turn each greedy round into two
    // cache-linear scans (a u32 argmin/argmax and a per-word decrement
    // over the grabbed items) instead of re-intersecting every device's
    // bitset. The counts stay exact because each grab is a subset of the
    // residual, so the drop per device is precisely `|D_i ∩ grab|`.
    let matrix = HoldingsMatrix::build(universe);
    let mut usable = matrix.usable_counts(&residual);

    while !residual.is_empty() {
        mec_obs::counter_add("dta/greedy/rounds", 1);
        mec_obs::observe("dta/greedy/residual_items", residual.len() as f64);
        let mut chosen: Option<(usize, u32)> = None; // (device, usable size)
        for (i, &count) in usable.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let better = match (selection, chosen) {
                (_, None) => true,
                (Selection::SmallestFirst, Some((_, best))) => count < best,
                (Selection::LargestFirst, Some((_, best))) => count > best,
            };
            if better {
                chosen = Some((i, count));
            }
        }
        let Some((device, _)) = chosen else {
            return Err(AssignError::Unsupported {
                algorithm: "data division",
                reason: format!("{} required items are owned by no device", residual.len()),
            });
        };
        let grab = universe.holdings(DeviceId(device))?.intersection(&residual);
        matrix.subtract_counts(&mut usable, &grab);
        shares[device].union_with(&grab);
        residual.subtract(&grab);
    }
    Ok(Coverage::new(shares))
}

/// Local-search refinement of a coverage's min-max objective (extension;
/// not part of the paper's algorithm): repeatedly move one item from the
/// currently largest share to another owner whose share is at least two
/// items smaller, until no such move exists. Preserves validity.
///
/// # Errors
///
/// Returns [`AssignError::CoverageMismatch`] when the coverage's share
/// count differs from the universe's device count (including the empty
/// coverage), and [`AssignError::UniverseMismatch`] when a share was
/// built for a different item capacity.
pub fn rebalance(universe: &DataUniverse, coverage: &Coverage) -> Result<Coverage, AssignError> {
    if coverage.shares().len() != universe.num_devices() {
        return Err(AssignError::CoverageMismatch {
            devices: universe.num_devices(),
            shares: coverage.shares().len(),
        });
    }
    for share in coverage.shares() {
        check_universe("rebalance", universe, share)?;
    }
    let _timer = mec_obs::span("dta/rebalance");
    let owners = OwnersIndex::build(universe)?;
    let mut shares: Vec<ItemSet> = coverage.shares().to_vec();
    loop {
        let Some((max_dev, max_len)) = shares
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.len()))
            .max_by_key(|&(_, l)| l)
        else {
            return Ok(Coverage::new(shares));
        };
        if max_len <= 1 {
            return Ok(Coverage::new(shares));
        }
        // Find an item of the largest share that another (smaller) owner
        // could take.
        let mut best_move: Option<(mec_sim::data::DataItemId, usize)> = None;
        for item in shares[max_dev].iter() {
            for &owner in owners.owners(item) {
                let owner = owner as usize;
                if owner == max_dev {
                    continue;
                }
                let target_len = shares[owner].len();
                if target_len + 1 < max_len
                    && best_move.is_none_or(|(_, t)| shares[t].len() > target_len)
                {
                    best_move = Some((item, owner));
                }
            }
        }
        match best_move {
            Some((item, to)) => {
                shares[max_dev].remove(item);
                shares[to].insert(item);
                mec_obs::counter_add("dta/rebalance/moves", 1);
            }
            None => return Ok(Coverage::new(shares)),
        }
    }
}

/// Exact minimum of the max-share objective (Definition 1) by
/// branch-and-bound over item placements.
///
/// # Errors
///
/// Returns [`AssignError::Unsupported`] when `required` has more than
/// `max_items` items.
pub fn exact_min_max(
    universe: &DataUniverse,
    required: &ItemSet,
    max_items: usize,
) -> Result<Coverage, AssignError> {
    check_universe("exact_min_max", universe, required)?;
    let items: Vec<_> = required.iter().collect();
    if items.len() > max_items {
        return Err(AssignError::Unsupported {
            algorithm: "exact_min_max",
            reason: format!("{} items exceed the limit {max_items}", items.len()),
        });
    }
    let n = universe.num_devices();
    let index = OwnersIndex::build(universe)?;
    // Most-constrained items first makes infeasible branches die early.
    let mut ordered = items.clone();
    ordered.sort_by_key(|&it| index.owners(it).len());
    let owners: Vec<Vec<usize>> = ordered
        .iter()
        .map(|&it| index.owners(it).iter().map(|&d| d as usize).collect())
        .collect();
    // No placement can beat the pigeonhole bound ⌈M/n⌉ (in fact ⌈M/n'⌉
    // with n' = devices owning anything, but the weaker bound suffices
    // for early exit).
    let global_lb = items.len().div_ceil(n.max(1)).max(1);

    struct Ctx<'a> {
        owners: &'a [Vec<usize>],
        global_lb: usize,
        best: Option<(usize, Vec<usize>)>,
        loads: Vec<usize>,
        placement: Vec<usize>,
    }

    fn recurse(ctx: &mut Ctx<'_>, k: usize, current_max: usize) {
        if let Some((b, _)) = &ctx.best {
            if current_max >= *b {
                return; // cannot improve on the incumbent
            }
            if *b == ctx.global_lb {
                return; // incumbent is provably optimal
            }
        }
        if k == ctx.owners.len() {
            ctx.best = Some((current_max, ctx.placement.clone()));
            return;
        }
        // Least-loaded owner first: reaches balanced incumbents fast.
        let mut candidates: Vec<usize> = ctx.owners[k].clone();
        candidates.sort_by_key(|&d| ctx.loads[d]);
        for d in candidates {
            ctx.loads[d] += 1;
            ctx.placement[k] = d;
            let next_max = current_max.max(ctx.loads[d]);
            recurse(ctx, k + 1, next_max);
            ctx.loads[d] -= 1;
        }
        ctx.placement[k] = usize::MAX;
    }

    let mut ctx = Ctx {
        owners: &owners,
        global_lb,
        best: None,
        loads: vec![0usize; n],
        placement: vec![usize::MAX; ordered.len()],
    };
    recurse(&mut ctx, 0, 0);

    let (_, placement) = ctx.best.ok_or_else(|| AssignError::Unsupported {
        algorithm: "exact_min_max",
        reason: "some required item has no owner".into(),
    })?;
    let mut shares = vec![ItemSet::new(required.capacity()); n];
    for (k, &d) in placement.iter().enumerate() {
        shares[d].insert(ordered[k]);
    }
    Ok(Coverage::new(shares))
}

/// Exact minimum number of involved devices (Definition 2) by searching
/// device subsets in increasing size.
///
/// # Errors
///
/// Returns [`AssignError::Unsupported`] when the universe has more than
/// `max_devices` devices.
pub fn exact_min_devices(
    universe: &DataUniverse,
    required: &ItemSet,
    max_devices: usize,
) -> Result<Coverage, AssignError> {
    check_universe("exact_min_devices", universe, required)?;
    let n = universe.num_devices();
    if n > max_devices {
        return Err(AssignError::Unsupported {
            algorithm: "exact_min_devices",
            reason: format!("{n} devices exceed the limit {max_devices}"),
        });
    }
    // Usable sets per device.
    let mut usable: Vec<ItemSet> = Vec::with_capacity(n);
    for i in 0..n {
        usable.push(universe.holdings(DeviceId(i))?.intersection(required));
    }

    for size in 1..=n {
        if let Some(subset) = find_cover(&usable, required, size) {
            // Materialize a disjoint coverage over the chosen devices.
            let mut residual = required.clone();
            let mut shares = vec![ItemSet::new(required.capacity()); n];
            for &d in &subset {
                let grab = usable[d].intersection(&residual);
                shares[d].union_with(&grab);
                residual.subtract(&grab);
            }
            debug_assert!(residual.is_empty());
            return Ok(Coverage::new(shares));
        }
    }
    Err(AssignError::Unsupported {
        algorithm: "exact_min_devices",
        reason: "required set not coverable by any device subset".into(),
    })
}

/// Depth-first search for a `size`-subset of devices covering `required`.
fn find_cover(usable: &[ItemSet], required: &ItemSet, size: usize) -> Option<Vec<usize>> {
    fn recurse(
        usable: &[ItemSet],
        residual: &ItemSet,
        start: usize,
        remaining: usize,
        chosen: &mut Vec<usize>,
    ) -> bool {
        if residual.is_empty() {
            return true;
        }
        if remaining == 0 || start >= usable.len() {
            return false;
        }
        for d in start..usable.len() {
            if usable[d].intersection_len(residual) == 0 {
                continue;
            }
            chosen.push(d);
            let next = residual.difference(&usable[d]);
            if recurse(usable, &next, d + 1, remaining - 1, chosen) {
                return true;
            }
            chosen.pop();
        }
        false
    }
    let mut chosen = Vec::new();
    if recurse(usable, required, 0, size, &mut chosen) {
        // `residual.is_empty()` can hit before `size` devices are used.
        Some(chosen)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_sim::data::DataItemId;
    use mec_sim::units::Bytes;
    use mec_sim::workload::DivisibleScenarioConfig;

    fn ids(v: &[usize]) -> impl Iterator<Item = DataItemId> + '_ {
        v.iter().map(|&i| DataItemId(i))
    }

    fn scenario(seed: u64) -> mec_sim::workload::DivisibleScenario {
        DivisibleScenarioConfig::paper_defaults(seed)
            .generate()
            .unwrap()
    }

    #[test]
    fn both_greedy_divisions_are_valid() {
        let s = scenario(60);
        let required = s.required_universe();
        for cov in [
            divide_balanced(&s.universe, &required).unwrap(),
            divide_min_devices(&s.universe, &required).unwrap(),
        ] {
            cov.validate(&s.universe, &required).unwrap();
        }
    }

    #[test]
    fn workload_balances_number_minimizes() {
        let s = scenario(61);
        let required = s.required_universe();
        let balanced = divide_balanced(&s.universe, &required).unwrap();
        let minimal = divide_min_devices(&s.universe, &required).unwrap();
        // Fig. 6 shape: DTA-Workload has the smaller max share (shorter
        // processing time); DTA-Number involves fewer devices.
        assert!(
            balanced.max_share_len() <= minimal.max_share_len(),
            "balanced max {} vs minimal max {}",
            balanced.max_share_len(),
            minimal.max_share_len()
        );
        assert!(
            minimal.involved_devices() <= balanced.involved_devices(),
            "minimal involves {} vs balanced {}",
            minimal.involved_devices(),
            balanced.involved_devices()
        );
    }

    #[test]
    fn rebalance_never_hurts_and_stays_valid() {
        let s = scenario(62);
        let required = s.required_universe();
        let base = divide_balanced(&s.universe, &required).unwrap();
        let refined = rebalance(&s.universe, &base).unwrap();
        refined.validate(&s.universe, &required).unwrap();
        assert!(refined.max_share_len() <= base.max_share_len());
    }

    /// A universe where greedy-balanced is visibly suboptimal but exact
    /// finds the best min-max split.
    fn handmade() -> (DataUniverse, ItemSet) {
        let m = 6;
        let sizes = vec![Bytes::from_kb(1.0); m];
        let holdings = vec![
            ItemSet::from_ids(m, ids(&[0, 1, 2, 3])),
            ItemSet::from_ids(m, ids(&[2, 3, 4])),
            ItemSet::from_ids(m, ids(&[4, 5])),
        ];
        let u = DataUniverse::new(sizes, holdings).unwrap();
        (u, ItemSet::full(m))
    }

    #[test]
    fn exact_min_max_is_a_lower_bound_for_greedy() {
        let (u, required) = handmade();
        let exact = exact_min_max(&u, &required, 16).unwrap();
        exact.validate(&u, &required).unwrap();
        let greedy = divide_balanced(&u, &required).unwrap();
        assert!(exact.max_share_len() <= greedy.max_share_len());
        assert_eq!(
            exact.max_share_len(),
            2,
            "6 items over 3 devices balance at 2"
        );
    }

    #[test]
    fn exact_min_devices_is_a_lower_bound_for_greedy() {
        let (u, required) = handmade();
        let exact = exact_min_devices(&u, &required, 16).unwrap();
        exact.validate(&u, &required).unwrap();
        let greedy = divide_min_devices(&u, &required).unwrap();
        assert!(exact.involved_devices() <= greedy.involved_devices());
        // Devices 0 and 2 suffice: {0,1,2,3} ∪ {4,5}.
        assert_eq!(exact.involved_devices(), 2);
    }

    #[test]
    fn greedy_on_random_instances_matches_exact_often() {
        // Empirical ratio check on small random instances: greedy
        // min-devices within ln(n) of exact; greedy balanced within
        // 1/(1-1/e) ≈ 1.58 of exact in the submodular sense — we check
        // the looser integer bound max <= exact_max * 3 to stay robust.
        for seed in 70..76 {
            let mut cfg = DivisibleScenarioConfig::paper_defaults(seed);
            cfg.base.num_stations = 1;
            cfg.base.devices_per_station = 5;
            cfg.num_items = 12;
            cfg.tasks_total = 4;
            cfg.items_per_task = (2, 6);
            let s = cfg.generate().unwrap();
            let required = s.required_universe();
            if required.is_empty() {
                continue;
            }
            let g_bal = divide_balanced(&s.universe, &required).unwrap();
            let e_bal = exact_min_max(&s.universe, &required, 12).unwrap();
            assert!(g_bal.max_share_len() <= 3 * e_bal.max_share_len().max(1));

            let g_num = divide_min_devices(&s.universe, &required).unwrap();
            let e_num = exact_min_devices(&s.universe, &required, 12).unwrap();
            let n = s.universe.num_devices() as f64;
            let bound = (e_num.involved_devices() as f64 * n.ln().max(1.0)).ceil() as usize;
            assert!(g_num.involved_devices() <= bound.max(e_num.involved_devices()));
        }
    }

    #[test]
    fn division_reports_unownable_items() {
        // A "required" set exceeding the universe is rejected with a
        // descriptive error rather than looping forever. Build holdings
        // not covering item 3 via the raw Coverage path (DataUniverse
        // enforces coverage, so bypass it with a smaller required set,
        // then ask for more).
        let (u, _) = handmade();
        let too_much = ItemSet::full(6);
        // Every item of `handmade` is owned, so instead drop to a
        // universe subset: required items {0..5} are fine; ask a
        // restricted universe by building new holdings.
        let ok = divide_balanced(&u, &too_much);
        assert!(ok.is_ok());
    }

    #[test]
    fn out_of_universe_required_set_is_a_typed_error() {
        // A required set built for a different (larger) universe must be
        // rejected with `UniverseMismatch`, not an `ItemSet` capacity
        // assertion panic.
        let (u, _) = handmade(); // 6 items
        let foreign = ItemSet::full(9);
        for result in [
            divide_balanced(&u, &foreign),
            divide_min_devices(&u, &foreign),
            exact_min_max(&u, &foreign, 16),
            exact_min_devices(&u, &foreign, 16),
        ] {
            assert!(matches!(
                result,
                Err(AssignError::UniverseMismatch {
                    expected: 6,
                    found: 9,
                    ..
                })
            ));
        }
    }

    #[test]
    fn rebalance_rejects_malformed_coverages() {
        let (u, _) = handmade(); // 3 devices, 6 items
                                 // Empty coverage: previously a `max_by_key` panic.
        let empty = Coverage::new(vec![]);
        assert!(matches!(
            rebalance(&u, &empty),
            Err(AssignError::CoverageMismatch {
                devices: 3,
                shares: 0,
            })
        ));
        // Wrong share count.
        let short = Coverage::new(vec![ItemSet::new(6); 2]);
        assert!(matches!(
            rebalance(&u, &short),
            Err(AssignError::CoverageMismatch {
                devices: 3,
                shares: 2,
            })
        ));
        // Shares built for a different universe.
        let foreign = Coverage::new(vec![ItemSet::new(9); 3]);
        assert!(matches!(
            rebalance(&u, &foreign),
            Err(AssignError::UniverseMismatch {
                expected: 6,
                found: 9,
                ..
            })
        ));
    }

    #[test]
    fn size_limits_are_enforced() {
        let s = scenario(63);
        let required = s.required_universe();
        assert!(matches!(
            exact_min_max(&s.universe, &required, 3),
            Err(AssignError::Unsupported { .. })
        ));
        assert!(matches!(
            exact_min_devices(&s.universe, &required, 3),
            Err(AssignError::Unsupported { .. })
        ));
    }
}
