//! Task rearrangement and the full DTA pipeline (Section IV.C).
//!
//! Given a coverage, every divisible task `T` is re-scoped onto each
//! device whose share intersects `T`'s input: only the task *descriptor*
//! (`op`, `C`, `T` — a few hundred bytes) travels to the device, the
//! device processes its share locally, and only the *partial results*
//! travel back to the task's owner for aggregation. LP-HTA then schedules
//! the rearranged (now local-data-only) tasks, so capacity pressure can
//! still push pieces to the station or cloud.
//!
//! Energy therefore decomposes into
//! `E = E_schedule(LP-HTA on pieces) + E_descriptors + E_partials`,
//! with no raw-data term — the entire point of Section IV.

use crate::assignment::Assignment;
use crate::costs::CostTable;
use crate::dta::coverage::Coverage;
use crate::dta::division::{divide_balanced, divide_min_devices};
use crate::error::AssignError;
use crate::hta::lp_hta::LpHta;
use crate::metrics::{evaluate_assignment, Metrics};
use mec_sim::data::ItemSet;
use mec_sim::task::{HolisticTask, TaskId};
use mec_sim::topology::DeviceId;
use mec_sim::transfer;
use mec_sim::units::{Bytes, Joules, Seconds};
use mec_sim::workload::DivisibleScenario;

/// Which Section IV division drives the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DivisionStrategy {
    /// DTA-Workload (Section IV.A): balance the shares.
    Workload,
    /// DTA-Number (Section IV.B): minimize involved devices.
    Number,
}

impl std::fmt::Display for DivisionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivisionStrategy::Workload => f.write_str("DTA-Workload"),
            DivisionStrategy::Number => f.write_str("DTA-Number"),
        }
    }
}

/// Configuration of the DTA pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtaConfig {
    /// Division strategy.
    pub strategy: DivisionStrategy,
    /// Size of one task descriptor (`op`, `C`, `T`) in bytes.
    pub descriptor_bytes: f64,
    /// Scheduler for the rearranged pieces.
    pub hta: LpHta,
}

impl DtaConfig {
    /// DTA-Workload with defaults.
    pub fn workload() -> DtaConfig {
        DtaConfig {
            strategy: DivisionStrategy::Workload,
            descriptor_bytes: 256.0,
            hta: LpHta::paper(),
        }
    }

    /// DTA-Number with defaults.
    pub fn number() -> DtaConfig {
        DtaConfig {
            strategy: DivisionStrategy::Number,
            ..DtaConfig::workload()
        }
    }
}

/// One rearranged piece: which device processes which slice of which
/// original task.
#[derive(Debug, Clone, PartialEq)]
pub struct Piece {
    /// The original divisible task.
    pub original: TaskId,
    /// Owner of the original task (aggregation target).
    pub aggregator: DeviceId,
    /// Device processing this piece.
    pub processor: DeviceId,
    /// Items of this piece.
    pub items: ItemSet,
    /// Byte size of the piece.
    pub size: Bytes,
}

/// Outcome of a DTA pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct DtaReport {
    /// The data division used.
    pub coverage: Coverage,
    /// Devices with nonempty shares.
    pub involved_devices: usize,
    /// Parallel processing time of the division (Fig. 6(a) metric).
    pub processing_time: Seconds,
    /// Pieces after rearrangement.
    pub pieces: Vec<Piece>,
    /// LP-HTA metrics over the rearranged local tasks.
    pub schedule_metrics: Metrics,
    /// Energy of shipping descriptors to processors.
    pub descriptor_energy: Joules,
    /// Energy of shipping partial results to aggregators.
    pub partial_energy: Joules,
    /// Grand total: scheduling + descriptors + partials.
    pub total_energy: Joules,
    /// Assignment of the rearranged tasks.
    pub assignment: Assignment,
}

/// Runs the full DTA pipeline over a divisible scenario.
///
/// # Errors
///
/// Propagates division, cost-model and LP failures.
pub fn run_dta(scenario: &DivisibleScenario, config: DtaConfig) -> Result<DtaReport, AssignError> {
    let required = scenario.required_universe();
    let coverage = match config.strategy {
        DivisionStrategy::Workload => divide_balanced(&scenario.universe, &required)?,
        DivisionStrategy::Number => divide_min_devices(&scenario.universe, &required)?,
    };
    run_dta_with_coverage(scenario, config, coverage)
}

/// Runs the pipeline with an externally supplied coverage (used by the
/// ablation benches to compare division strategies on equal footing).
///
/// # Errors
///
/// Propagates cost-model and LP failures.
pub fn run_dta_with_coverage(
    scenario: &DivisibleScenario,
    config: DtaConfig,
    coverage: Coverage,
) -> Result<DtaReport, AssignError> {
    let system = &scenario.system;
    let _timer = mec_obs::span("dta/rearrange");

    // Rearrangement: a piece per (task, device with intersecting share).
    let mut pieces = Vec::new();
    let mut rearranged = Vec::new();
    for task in &scenario.tasks {
        for (i, share) in coverage.shares().iter().enumerate() {
            let slice = share.intersection(&task.items);
            if slice.is_empty() {
                continue;
            }
            let size = scenario.universe.set_size(&slice);
            let processor = DeviceId(i);
            pieces.push(Piece {
                original: task.id,
                aggregator: task.owner,
                processor,
                items: slice,
                size,
            });
            rearranged.push(HolisticTask {
                id: TaskId {
                    user: i,
                    index: rearranged.len(),
                },
                owner: processor,
                local_size: size,
                external_size: Bytes::ZERO,
                external_source: None,
                complexity: task.complexity,
                // A streaming aggregation processes its share block by
                // block and holds only constant partial state, so the
                // piece's steady-state occupation is the descriptor-sized
                // constant, independent of the share (see DESIGN.md §4).
                resource: Bytes::new(config.descriptor_bytes),
                deadline: task.deadline,
            });
        }
    }

    mec_obs::counter_add("dta/rearrange/pieces", pieces.len() as u64);

    // Schedule the pieces with LP-HTA (Section IV.C: "the LP-HTA algorithm
    // in Section III is applied to schedule these new tasks").
    let costs = CostTable::build(system, &rearranged)?;
    let assignment = {
        use crate::hta::HtaAlgorithm;
        config.hta.assign(system, &rearranged, &costs)?
    };
    let schedule_metrics = evaluate_assignment(&rearranged, &costs, &assignment)?;

    // Descriptor and partial-result transport energy.
    let bb = system.backhaul.station_to_station;
    let desc = Bytes::new(config.descriptor_bytes);
    let mut descriptor_energy = Joules::ZERO;
    let mut partial_energy = Joules::ZERO;
    for piece in &pieces {
        if piece.processor == piece.aggregator {
            continue; // the owner's own share needs no transport
        }
        let from = system.device(piece.aggregator)?;
        let to = system.device(piece.processor)?;
        let cross = !system.same_cluster(piece.aggregator, piece.processor)?;
        // Descriptor: aggregator → processor.
        descriptor_energy +=
            transfer::upload_energy(&from.link, desc) + transfer::download_energy(&to.link, desc);
        // Partial result: processor → aggregator.
        let partial = system.result_model.result_size(piece.size);
        partial_energy += transfer::upload_energy(&to.link, partial)
            + transfer::download_energy(&from.link, partial);
        if cross {
            descriptor_energy += bb.transfer_energy(desc);
            partial_energy += bb.transfer_energy(partial);
        }
    }

    let total_energy = schedule_metrics.total_energy + descriptor_energy + partial_energy;
    Ok(DtaReport {
        involved_devices: coverage.involved_devices(),
        processing_time: coverage.processing_time(system, &scenario.universe),
        pieces,
        schedule_metrics,
        descriptor_energy,
        partial_energy,
        total_energy,
        assignment,
        coverage,
    })
}

/// Converts divisible tasks into *holistic* ones (raw data must be
/// gathered at one subsystem), for the Fig. 5 comparison of LP-HTA
/// against the DTA pipeline on the same workload.
///
/// For each task, the owner's local data is whatever it holds of the
/// input; the rest is external, sourced from the device holding the
/// largest missing part. Deadlines are widened to keep every task
/// schedulable, since Fig. 5 compares *energy*.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn divisible_as_holistic(
    scenario: &DivisibleScenario,
) -> Result<Vec<HolisticTask>, AssignError> {
    let mut out = Vec::with_capacity(scenario.tasks.len());
    for task in &scenario.tasks {
        let local = scenario.universe.usable(task.owner, &task.items)?.clone();
        let missing = task.items.difference(&local);
        let alpha = scenario.universe.set_size(&local);
        let beta = scenario.universe.set_size(&missing);
        let source = if missing.is_empty() {
            None
        } else {
            // The device holding the largest part of the missing data
            // (ties keep the highest index, matching `max_by_key`).
            let n = scenario.universe.num_devices();
            let mut best: Option<(usize, usize)> = None;
            for i in 0..n {
                if DeviceId(i) == task.owner {
                    continue;
                }
                let overlap = scenario
                    .universe
                    .holdings(DeviceId(i))?
                    .intersection_len(&missing);
                if best.is_none_or(|(_, b)| overlap >= b) {
                    best = Some((i, overlap));
                }
            }
            best.map(|(i, _)| DeviceId(i))
        };
        out.push(HolisticTask {
            id: task.id,
            owner: task.owner,
            local_size: alpha,
            external_size: beta,
            external_source: if beta.value() > 0.0 { source } else { None },
            complexity: task.complexity,
            resource: alpha + beta,
            deadline: Seconds::new(1e6), // energy-focused comparison
        });
    }
    Ok(out)
}

/// Per-device battery attribution of a DTA run: each processor pays the
/// compute energy of its pieces plus the partial-result upload; each
/// aggregator pays the descriptor upload and the partial download.
/// (Backhaul legs are infrastructure, as in
/// [`mec_sim::battery::attribute_energy`].)
///
/// # Errors
///
/// Propagates topology errors.
pub fn dta_device_shares(
    scenario: &DivisibleScenario,
    report: &DtaReport,
    descriptor_bytes: f64,
) -> Result<Vec<mec_sim::battery::DeviceShare>, AssignError> {
    use mec_sim::battery::DeviceShare;
    let system = &scenario.system;
    let desc = Bytes::new(descriptor_bytes);
    let mut shares: Vec<DeviceShare> = Vec::new();
    let mut pay = |device: DeviceId, energy: mec_sim::units::Joules| {
        if energy > mec_sim::units::Joules::ZERO {
            match shares.iter_mut().find(|s| s.device == device) {
                Some(s) => s.energy += energy,
                None => shares.push(DeviceShare { device, energy }),
            }
        }
    };
    for piece in &report.pieces {
        let proc_dev = system.device(piece.processor)?;
        pay(
            piece.processor,
            system
                .cycle_model
                .device_energy(piece.size, 1.0, proc_dev.cpu),
        );
        if piece.processor != piece.aggregator {
            let agg_dev = system.device(piece.aggregator)?;
            let partial = system.result_model.result_size(piece.size);
            pay(
                piece.processor,
                transfer::upload_energy(&proc_dev.link, partial),
            );
            pay(
                piece.aggregator,
                transfer::download_energy(&agg_dev.link, partial),
            );
            pay(
                piece.aggregator,
                transfer::upload_energy(&agg_dev.link, desc),
            );
            pay(
                piece.processor,
                transfer::download_energy(&proc_dev.link, desc),
            );
        }
    }
    Ok(shares)
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_enum!(DivisionStrategy { Workload, Number });
djson::impl_json_struct!(Piece {
    original,
    aggregator,
    processor,
    items,
    size
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hta::HtaAlgorithm;
    use mec_sim::workload::DivisibleScenarioConfig;

    fn scenario(seed: u64) -> DivisibleScenario {
        let mut cfg = DivisibleScenarioConfig::paper_defaults(seed);
        cfg.tasks_total = 40;
        cfg.num_items = 300;
        cfg.generate().unwrap()
    }

    #[test]
    fn pipeline_produces_consistent_report() {
        let s = scenario(80);
        let r = run_dta(&s, DtaConfig::workload()).unwrap();
        assert!(r.involved_devices > 0);
        assert!(r.processing_time > Seconds::ZERO);
        assert!(!r.pieces.is_empty());
        let sum = r.schedule_metrics.total_energy + r.descriptor_energy + r.partial_energy;
        assert!((r.total_energy.value() - sum.value()).abs() < 1e-9);
        // Every piece is local-only data on its processor.
        for p in &r.pieces {
            assert!(p.size > Bytes::ZERO);
        }
    }

    #[test]
    fn pieces_cover_every_task_exactly() {
        let s = scenario(81);
        let r = run_dta(&s, DtaConfig::number()).unwrap();
        for task in &s.tasks {
            let mut acc = ItemSet::new(s.universe.num_items());
            for p in r.pieces.iter().filter(|p| p.original == task.id) {
                assert!(acc.is_disjoint(&p.items), "pieces of {} overlap", task.id);
                acc.union_with(&p.items);
            }
            assert_eq!(acc, task.items, "pieces of {} must tile its items", task.id);
        }
    }

    #[test]
    fn dta_saves_energy_over_raw_data_hta() {
        // Fig. 5(a) shape: the DTA pipeline moves descriptors + partials
        // only, so its energy is far below LP-HTA over raw shared data.
        let s = scenario(82);
        let dta = run_dta(&s, DtaConfig::workload()).unwrap();
        let holistic = divisible_as_holistic(&s).unwrap();
        let costs = CostTable::build(&s.system, &holistic).unwrap();
        let a = LpHta::paper().assign(&s.system, &holistic, &costs).unwrap();
        let m = evaluate_assignment(&holistic, &costs, &a).unwrap();
        assert!(
            dta.total_energy.value() < m.total_energy.value(),
            "DTA {} !< LP-HTA {}",
            dta.total_energy,
            m.total_energy
        );
    }

    #[test]
    fn workload_beats_number_on_time_number_on_devices() {
        let s = scenario(83);
        let w = run_dta(&s, DtaConfig::workload()).unwrap();
        let n = run_dta(&s, DtaConfig::number()).unwrap();
        assert!(
            w.processing_time <= n.processing_time,
            "workload {} !<= number {}",
            w.processing_time,
            n.processing_time
        );
        assert!(
            n.involved_devices <= w.involved_devices,
            "number {} !<= workload {}",
            n.involved_devices,
            w.involved_devices
        );
    }

    #[test]
    fn holistic_conversion_is_valid() {
        let s = scenario(84);
        let tasks = divisible_as_holistic(&s).unwrap();
        assert_eq!(tasks.len(), s.tasks.len());
        for t in &tasks {
            t.validate().unwrap();
        }
        // Sizes add up to the tasks' full inputs.
        for (h, d) in tasks.iter().zip(s.tasks.iter()) {
            let full = s.universe.set_size(&d.items);
            assert!((h.input_size().value() - full.value()).abs() < 1e-6);
        }
    }
}
