//! Evaluation metrics: the quantities plotted in every figure of the
//! paper's Section V — total energy, average latency, unsatisfied-task
//! rate — plus resource-usage accounting used by tests to check that an
//! assignment respects the C2/C3 capacity constraints.

use crate::assignment::{Assignment, Decision};
use crate::costs::CostTable;
use crate::error::AssignError;
use mec_sim::task::{ExecutionSite, HolisticTask};
use mec_sim::topology::MecSystem;
use mec_sim::units::{Bytes, Joules, Seconds};

/// Aggregate quality of one assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Total system energy over the assigned tasks (the paper's
    /// objective `Σ E_ijl x_ijl`).
    pub total_energy: Joules,
    /// Mean `t_ijl` over the assigned tasks.
    pub mean_latency: Seconds,
    /// Fraction of *all* tasks whose delay constraint is not met:
    /// cancelled tasks plus assigned tasks finishing after their
    /// deadline (Fig. 3's metric).
    pub unsatisfied_rate: f64,
    /// Number of cancelled tasks.
    pub cancelled: usize,
    /// Per-site task counts `(device, station, cloud)`.
    pub site_counts: [usize; 3],
}

/// Capacity usage of an assignment against the C2/C3 limits.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityUsage {
    /// `Σ_j C_ij x_ij1` per device, parallel to `system.devices()`.
    pub device_usage: Vec<Bytes>,
    /// `Σ C_ij x_ij2` per station, parallel to `system.stations()`.
    pub station_usage: Vec<Bytes>,
}

impl CapacityUsage {
    /// True iff every device respects `max_i` and every station `max_S`
    /// (within `slack` bytes of tolerance).
    pub fn within_limits(&self, system: &MecSystem, slack: Bytes) -> bool {
        let devices_ok = self
            .device_usage
            .iter()
            .zip(system.devices())
            .all(|(u, d)| *u <= d.max_resource + slack);
        let stations_ok = self
            .station_usage
            .iter()
            .zip(system.stations())
            .all(|(u, s)| *u <= s.max_resource + slack);
        devices_ok && stations_ok
    }
}

/// Computes the Section V metrics of an assignment.
///
/// # Errors
///
/// Returns [`AssignError::LengthMismatch`] when the slices disagree in
/// length.
pub fn evaluate_assignment(
    tasks: &[HolisticTask],
    costs: &CostTable,
    assignment: &Assignment,
) -> Result<Metrics, AssignError> {
    if tasks.len() != assignment.len() {
        return Err(AssignError::LengthMismatch {
            tasks: tasks.len(),
            other: assignment.len(),
        });
    }
    if tasks.len() != costs.len() {
        return Err(AssignError::LengthMismatch {
            tasks: tasks.len(),
            other: costs.len(),
        });
    }

    let mut total_energy = Joules::ZERO;
    let mut latency_sum = Seconds::ZERO;
    let mut assigned = 0usize;
    let mut unsatisfied = 0usize;
    for (idx, task) in tasks.iter().enumerate() {
        match assignment.decision(idx) {
            Decision::Assigned(site) => {
                let c = costs.at(idx, site);
                total_energy += c.energy;
                latency_sum += c.time;
                assigned += 1;
                if c.time > task.deadline {
                    unsatisfied += 1;
                }
            }
            Decision::Cancelled => unsatisfied += 1,
        }
    }
    let mean_latency = if assigned > 0 {
        latency_sum / assigned as f64
    } else {
        Seconds::ZERO
    };
    let unsatisfied_rate = if tasks.is_empty() {
        0.0
    } else {
        unsatisfied as f64 / tasks.len() as f64
    };
    Ok(Metrics {
        total_energy,
        mean_latency,
        unsatisfied_rate,
        cancelled: assignment.cancelled().len(),
        site_counts: assignment.site_counts(),
    })
}

/// Computes per-device and per-station resource usage (the left-hand
/// sides of constraints C2 and C3).
///
/// # Errors
///
/// Returns [`AssignError::LengthMismatch`] when the slices disagree in
/// length.
pub fn capacity_usage(
    system: &MecSystem,
    tasks: &[HolisticTask],
    assignment: &Assignment,
) -> Result<CapacityUsage, AssignError> {
    if tasks.len() != assignment.len() {
        return Err(AssignError::LengthMismatch {
            tasks: tasks.len(),
            other: assignment.len(),
        });
    }
    let mut device_usage = vec![Bytes::ZERO; system.num_devices()];
    let mut station_usage = vec![Bytes::ZERO; system.num_stations()];
    for (idx, task) in tasks.iter().enumerate() {
        match assignment.decision(idx) {
            Decision::Assigned(ExecutionSite::Device) => {
                device_usage[task.owner.0] += task.resource;
            }
            Decision::Assigned(ExecutionSite::Station) => {
                let st = system.station_of(task.owner)?;
                station_usage[st.0] += task.resource;
            }
            _ => {}
        }
    }
    Ok(CapacityUsage {
        device_usage,
        station_usage,
    })
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_struct!(Metrics {
    total_energy,
    mean_latency,
    unsatisfied_rate,
    cancelled,
    site_counts,
});
djson::impl_json_struct!(CapacityUsage {
    device_usage,
    station_usage
});

#[cfg(test)]
mod tests {
    use super::*;
    use mec_sim::workload::ScenarioConfig;

    #[test]
    fn all_cloud_metrics() {
        let s = ScenarioConfig::paper_defaults(4).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let a = Assignment::uniform(s.tasks.len(), ExecutionSite::Cloud);
        let m = evaluate_assignment(&s.tasks, &costs, &a).unwrap();
        assert_eq!(m.site_counts, [0, 0, s.tasks.len()]);
        assert_eq!(m.cancelled, 0);
        assert!(m.total_energy > Joules::ZERO);
        assert!(m.mean_latency > Seconds::new(0.25), "cloud latency floor");
        // The cloud path misses some deadlines but uses no edge capacity.
        let usage = capacity_usage(&s.system, &s.tasks, &a).unwrap();
        assert!(usage.within_limits(&s.system, Bytes::ZERO));
        assert!(usage.device_usage.iter().all(|b| *b == Bytes::ZERO));
    }

    #[test]
    fn device_assignment_uses_device_capacity() {
        let s = ScenarioConfig::paper_defaults(4).generate().unwrap();
        let a = Assignment::uniform(s.tasks.len(), ExecutionSite::Device);
        let usage = capacity_usage(&s.system, &s.tasks, &a).unwrap();
        let total: f64 = usage.device_usage.iter().map(|b| b.value()).sum();
        let expected: f64 = s.tasks.iter().map(|t| t.resource.value()).sum();
        assert!((total - expected).abs() < 1e-6);
        assert!(usage.station_usage.iter().all(|b| *b == Bytes::ZERO));
    }

    #[test]
    fn cancelled_tasks_count_as_unsatisfied() {
        let s = ScenarioConfig::paper_defaults(4).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let decisions = s
            .tasks
            .iter()
            .enumerate()
            .map(|(i, _)| {
                if i < 10 {
                    Decision::Cancelled
                } else {
                    Decision::Assigned(ExecutionSite::Device)
                }
            })
            .collect();
        let a = Assignment::new(decisions);
        let m = evaluate_assignment(&s.tasks, &costs, &a).unwrap();
        assert_eq!(m.cancelled, 10);
        assert!(m.unsatisfied_rate >= 10.0 / s.tasks.len() as f64);
    }

    #[test]
    fn length_mismatch_is_caught() {
        let s = ScenarioConfig::paper_defaults(4).generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let a = Assignment::uniform(2, ExecutionSite::Device);
        assert!(evaluate_assignment(&s.tasks, &costs, &a).is_err());
        assert!(capacity_usage(&s.system, &s.tasks, &a).is_err());
    }
}
