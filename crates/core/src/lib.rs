//! # dsmec-core — task assignment for Data-Shared MEC systems
//!
//! A full reproduction of the algorithms in *Task Assignment Algorithms
//! in Data Shared Mobile Edge Computing Systems* (Cheng, Chen, Li, Gao —
//! ICDCS 2019), built on the [`mec_sim`] substrate:
//!
//! * **LP-HTA** ([`hta::LpHta`]) — the paper's LP-relaxation algorithm
//!   for the NP-complete Holistic Task Assignment problem, with its
//!   Theorem-2/Corollary-1 ratio-bound certificates attached to every run;
//! * **DTA-Workload / DTA-Number** ([`dta`]) — the two greedy data
//!   divisions for divisible tasks, plus the Section IV.C rearrangement
//!   pipeline that replaces raw-data movement with descriptors and
//!   partial results;
//! * **Comparators** — `HGOS`, `AllToC`, `AllOffload` as in Section V,
//!   plus exact branch-and-bound references for small instances.
//!
//! ```
//! use dsmec_core::costs::CostTable;
//! use dsmec_core::hta::{HtaAlgorithm, LpHta, AllToC};
//! use dsmec_core::metrics::evaluate_assignment;
//! use mec_sim::workload::ScenarioConfig;
//!
//! let s = ScenarioConfig::paper_defaults(7).generate()?;
//! let costs = CostTable::build(&s.system, &s.tasks)?;
//!
//! let smart = LpHta::paper().assign(&s.system, &s.tasks, &costs)?;
//! let naive = AllToC.assign(&s.system, &s.tasks, &costs)?;
//!
//! let m1 = evaluate_assignment(&s.tasks, &costs, &smart)?;
//! let m2 = evaluate_assignment(&s.tasks, &costs, &naive)?;
//! assert!(m1.total_energy < m2.total_energy);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assignment;
pub mod costs;
pub mod dta;
pub mod error;
pub mod hta;
pub mod metrics;
pub mod repair;

pub use assignment::{Assignment, Decision};
pub use costs::CostTable;
pub use error::AssignError;
pub use hta::{HtaAlgorithm, LpHta};
pub use metrics::{evaluate_assignment, Metrics};
pub use repair::{execute_with_repair, repair_coverage, ChaosRunReport, RepairPolicy};
