//! A seeded property-test harness.
//!
//! Replaces the `proptest` dependency for this workspace's needs: run a
//! closure over many independently seeded [`ChaCha8Rng`]s, draw inputs
//! inside the closure with `gen_range`/`gen_bool`/[`SliceRandom`], and
//! report the first failure with the exact seed that reproduces it.
//!
//! ```
//! use detrand::prop::{self, CaseResult};
//!
//! prop::run_cases("addition_commutes", 32, |rng| {
//!     let a = rng.gen_range(0..1000u64);
//!     let b = rng.gen_range(0..1000u64);
//!     detrand::prop_assert_eq!(a + b, b + a);
//!     Ok(())
//! });
//! ```
//!
//! Unlike `proptest` there is no shrinking: cases are cheap and seeds
//! are printed, so a failing case re-runs under a debugger with
//! `DSMEC_PROP_SEED=<seed>` (which also lets CI re-explore a different
//! region of the input space without touching code).
//!
//! [`SliceRandom`]: crate::SliceRandom

use crate::ChaCha8Rng;

/// A property either holds (`Ok`) or reports why it does not.
pub type CaseResult = Result<(), String>;

/// FNV-1a, used to fold the property name into the base seed so
/// different properties explore different input regions by default.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The base seed for a property: `DSMEC_PROP_SEED` when set (same
/// override for every property), otherwise an FNV-1a fold of the
/// property name.
#[must_use]
pub fn base_seed(name: &str) -> u64 {
    match std::env::var("DSMEC_PROP_SEED") {
        Ok(v) => v
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("DSMEC_PROP_SEED must be a u64, got {v:?}")),
        Err(_) => fnv1a(name.as_bytes()),
    }
}

/// Runs `cases` independently seeded executions of `property`, panicking
/// on the first failure with the property name, case index, and the
/// per-case seed that reproduces it via [`run_seed`].
///
/// # Panics
///
/// Panics when any case returns `Err`, with a reproduction message.
pub fn run_cases(name: &str, cases: u64, mut property: impl FnMut(&mut ChaCha8Rng) -> CaseResult) {
    let base = base_seed(name);
    for case in 0..cases {
        let seed = base.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if let Err(message) = property(&mut ChaCha8Rng::seed_from_u64(seed)) {
            panic!(
                "property `{name}` failed at case {case}/{cases} (seed {seed}): {message}\n\
                 reproduce with detrand::prop::run_seed(\"{name}\", {seed}, ...)"
            );
        }
    }
}

/// Re-runs a single case of a property with an explicit seed (the one a
/// [`run_cases`] failure printed).
///
/// # Panics
///
/// Panics when the case fails.
pub fn run_seed(name: &str, seed: u64, mut property: impl FnMut(&mut ChaCha8Rng) -> CaseResult) {
    if let Err(message) = property(&mut ChaCha8Rng::seed_from_u64(seed)) {
        panic!("property `{name}` failed for seed {seed}: {message}");
    }
}

/// Fails the enclosing property case unless the condition holds.
///
/// Must be used inside a closure returning [`CaseResult`]; expands to an
/// early `return Err(..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fails the enclosing property case unless both sides are equal.
///
/// Must be used inside a closure returning [`CaseResult`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} ({}:{}): left {:?}, right {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} ({}:{}): left {:?}, right {:?}: {}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l,
                r,
                format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u64;
        run_cases("always_holds", 17, |rng| {
            ran += 1;
            let x = rng.gen_range(0..100u64);
            prop_assert!(x < 100);
            Ok(())
        });
        assert_eq!(ran, 17);
    }

    #[test]
    fn failing_property_names_seed_and_case() {
        let err = std::panic::catch_unwind(|| {
            run_cases("always_fails", 5, |_| {
                prop_assert!(false, "intentional");
                Ok(())
            });
        })
        .unwrap_err();
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("always_fails"), "{message}");
        assert!(message.contains("case 0/5"), "{message}");
        assert!(message.contains("seed "), "{message}");
        assert!(message.contains("intentional"), "{message}");
    }

    #[test]
    fn base_seed_differs_per_property() {
        if std::env::var("DSMEC_PROP_SEED").is_ok() {
            return; // override active: all properties share the seed
        }
        assert_ne!(base_seed("a"), base_seed("b"));
    }

    #[test]
    fn prop_assert_eq_reports_values() {
        let result: CaseResult = (|| {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        })();
        let message = result.unwrap_err();
        assert!(message.contains("left 2, right 3"), "{message}");
    }
}
