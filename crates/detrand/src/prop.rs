//! A seeded property-test harness.
//!
//! Replaces the `proptest` dependency for this workspace's needs: run a
//! closure over many independently seeded [`ChaCha8Rng`]s, draw inputs
//! inside the closure with `gen_range`/`gen_bool`/[`SliceRandom`], and
//! report the first failure with the exact seed that reproduces it.
//!
//! ```
//! use detrand::prop::{self, CaseResult};
//!
//! prop::run_cases("addition_commutes", 32, |rng| {
//!     let a = rng.gen_range(0..1000u64);
//!     let b = rng.gen_range(0..1000u64);
//!     detrand::prop_assert_eq!(a + b, b + a);
//!     Ok(())
//! });
//! ```
//!
//! Two harness flavors are provided:
//!
//! * [`run_cases`] — no shrinking: cases are cheap and seeds are
//!   printed, so a failing case re-runs under a debugger with
//!   `DSMEC_PROP_SEED=<seed>` (which also lets CI re-explore a
//!   different region of the input space without touching code).
//! * [`run_cases_scaled`] — **with shrinking**: the generator receives a
//!   [`Scale`] it applies to its ranges and collection sizes. On failure
//!   the harness re-runs the same seed at halved scales (halved ranges,
//!   truncated collections) down to [`Scale::MIN`], reports the smallest
//!   case that still fails, and prints the `(seed, scale)` pair that
//!   replays it via [`replay_scaled`].
//!
//! [`SliceRandom`]: crate::SliceRandom

use crate::ChaCha8Rng;
use std::fmt;

/// A property either holds (`Ok`) or reports why it does not.
pub type CaseResult = Result<(), String>;

/// FNV-1a, used to fold the property name into the base seed so
/// different properties explore different input regions by default.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The base seed for a property: `DSMEC_PROP_SEED` when set (same
/// override for every property), otherwise an FNV-1a fold of the
/// property name.
#[must_use]
pub fn base_seed(name: &str) -> u64 {
    match std::env::var("DSMEC_PROP_SEED") {
        Ok(v) => v
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("DSMEC_PROP_SEED must be a u64, got {v:?}")),
        Err(_) => fnv1a(name.as_bytes()),
    }
}

/// Runs `cases` independently seeded executions of `property`, panicking
/// on the first failure with the property name, case index, and the
/// per-case seed that reproduces it via [`run_seed`].
///
/// # Panics
///
/// Panics when any case returns `Err`, with a reproduction message.
pub fn run_cases(name: &str, cases: u64, mut property: impl FnMut(&mut ChaCha8Rng) -> CaseResult) {
    let base = base_seed(name);
    for case in 0..cases {
        let seed = base.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if let Err(message) = property(&mut ChaCha8Rng::seed_from_u64(seed)) {
            panic!(
                "property `{name}` failed at case {case}/{cases} (seed {seed}): {message}\n\
                 reproduce with detrand::prop::run_seed(\"{name}\", {seed}, ...)"
            );
        }
    }
}

/// Re-runs a single case of a property with an explicit seed (the one a
/// [`run_cases`] failure printed).
///
/// # Panics
///
/// Panics when the case fails.
pub fn run_seed(name: &str, seed: u64, mut property: impl FnMut(&mut ChaCha8Rng) -> CaseResult) {
    if let Err(message) = property(&mut ChaCha8Rng::seed_from_u64(seed)) {
        panic!("property `{name}` failed for seed {seed}: {message}");
    }
}

/// A size multiplier in `(0, 1]` the case generator applies to its
/// ranges and collection lengths, so the harness can shrink a failing
/// case by re-running the same seed at smaller scales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(f64);

impl Scale {
    /// Full-size generation (the first run of every case).
    pub const FULL: Scale = Scale(1.0);

    /// The smallest scale the shrinker tries (ten halvings).
    pub const MIN: Scale = Scale(1.0 / 1024.0);

    /// Wraps a raw factor, clamped into `(0, 1]`.
    #[must_use]
    pub fn new(factor: f64) -> Scale {
        Scale(factor.clamp(Self::MIN.0, 1.0))
    }

    /// The raw multiplier.
    #[must_use]
    pub fn factor(self) -> f64 {
        self.0
    }

    /// Scales an inclusive upper bound toward `lo`: at `FULL` this is
    /// `hi`, and each halving moves it halfway closer to `lo` (never
    /// below it). Use as `rng.gen_range(lo..=scale.upper(lo, hi))`.
    #[must_use]
    pub fn upper(self, lo: usize, hi: usize) -> usize {
        let span = hi.saturating_sub(lo) as f64;
        lo + (span * self.0).round() as usize
    }

    /// Truncates a collection length, keeping at least one element.
    #[must_use]
    pub fn truncate(self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        ((len as f64 * self.0).round() as usize).clamp(1, len)
    }
}

/// The minimized failing case a scaled harness found: the case value,
/// the `(seed, scale)` pair that regenerates it, the failure message it
/// produced, and how many shrink re-runs were spent.
#[derive(Debug, Clone)]
pub struct Shrunk<T> {
    /// The smallest failing case (regenerate with `gen(rng(seed), scale)`).
    pub case: T,
    /// Per-case seed that reproduces it.
    pub seed: u64,
    /// The scale the case was generated at.
    pub scale: Scale,
    /// The failure message the property returned for this case.
    pub message: String,
    /// Shrink re-runs performed after the original failure.
    pub shrink_runs: u32,
}

impl<T: fmt::Debug> fmt::Display for Shrunk<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "minimized case (seed {}, scale {:.6}, {} shrink runs): {:?}\n  failure: {}",
            self.seed,
            self.scale.factor(),
            self.shrink_runs,
            self.case,
            self.message
        )
    }
}

/// Like [`run_cases`], but with shrinking: `gen` draws a case from the
/// RNG at the given [`Scale`] and `check` tests it. On the first failing
/// case the harness re-runs the same per-case seed at halved scales
/// (halved ranges, truncated collections — whatever the generator maps
/// the scale to), keeps the smallest scale that still fails, and panics
/// with the minimized case plus its `(seed, scale)` replay pair.
///
/// # Panics
///
/// Panics when any case fails, reporting the minimized failing case.
pub fn run_cases_scaled<T: fmt::Debug>(
    name: &str,
    cases: u64,
    gen: impl FnMut(&mut ChaCha8Rng, Scale) -> T,
    check: impl FnMut(&T) -> CaseResult,
) {
    if let Some(shrunk) = find_failure_scaled(name, cases, gen, check) {
        panic!(
            "property `{name}` failed; {shrunk}\n\
             reproduce with detrand::prop::replay_scaled(\"{name}\", {}, \
             detrand::prop::Scale::new({:.6}), ...)",
            shrunk.seed,
            shrunk.scale.factor()
        );
    }
}

/// The non-panicking core of [`run_cases_scaled`]: returns the minimized
/// failing case, or `None` when every case passes. Useful for harnesses
/// that want to persist the minimized case (e.g. as a CI artifact)
/// before failing the test themselves.
pub fn find_failure_scaled<T: fmt::Debug>(
    name: &str,
    cases: u64,
    mut gen: impl FnMut(&mut ChaCha8Rng, Scale) -> T,
    mut check: impl FnMut(&T) -> CaseResult,
) -> Option<Shrunk<T>> {
    let base = base_seed(name);
    for case in 0..cases {
        let seed = base.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let full = gen(&mut ChaCha8Rng::seed_from_u64(seed), Scale::FULL);
        let Err(message) = check(&full) else {
            continue;
        };
        // Shrink: halve the scale down to Scale::MIN, keeping the
        // smallest scale whose regenerated case still fails. Halving is
        // not assumed monotonic — every scale is tried.
        let mut best = Shrunk {
            case: full,
            seed,
            scale: Scale::FULL,
            message,
            shrink_runs: 0,
        };
        let mut factor = 0.5;
        let mut runs = 0u32;
        while factor >= Scale::MIN.0 {
            runs += 1;
            let scale = Scale::new(factor);
            let candidate = gen(&mut ChaCha8Rng::seed_from_u64(seed), scale);
            if let Err(message) = check(&candidate) {
                best = Shrunk {
                    case: candidate,
                    seed,
                    scale,
                    message,
                    shrink_runs: runs,
                };
            }
            factor /= 2.0;
        }
        best.shrink_runs = runs;
        return Some(best);
    }
    None
}

/// Replays one `(seed, scale)` pair a [`run_cases_scaled`] failure
/// printed.
///
/// # Panics
///
/// Panics when the replayed case fails.
pub fn replay_scaled<T: fmt::Debug>(
    name: &str,
    seed: u64,
    scale: Scale,
    mut gen: impl FnMut(&mut ChaCha8Rng, Scale) -> T,
    mut check: impl FnMut(&T) -> CaseResult,
) {
    let case = gen(&mut ChaCha8Rng::seed_from_u64(seed), scale);
    if let Err(message) = check(&case) {
        panic!(
            "property `{name}` failed for seed {seed} at scale {:.6}: {message}\n  case: {case:?}",
            scale.factor()
        );
    }
}

/// Fails the enclosing property case unless the condition holds.
///
/// Must be used inside a closure returning [`CaseResult`]; expands to an
/// early `return Err(..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fails the enclosing property case unless both sides are equal.
///
/// Must be used inside a closure returning [`CaseResult`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} ({}:{}): left {:?}, right {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} ({}:{}): left {:?}, right {:?}: {}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l,
                r,
                format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u64;
        run_cases("always_holds", 17, |rng| {
            ran += 1;
            let x = rng.gen_range(0..100u64);
            prop_assert!(x < 100);
            Ok(())
        });
        assert_eq!(ran, 17);
    }

    #[test]
    fn failing_property_names_seed_and_case() {
        let err = std::panic::catch_unwind(|| {
            run_cases("always_fails", 5, |_| {
                prop_assert!(false, "intentional");
                Ok(())
            });
        })
        .unwrap_err();
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("always_fails"), "{message}");
        assert!(message.contains("case 0/5"), "{message}");
        assert!(message.contains("seed "), "{message}");
        assert!(message.contains("intentional"), "{message}");
    }

    #[test]
    fn base_seed_differs_per_property() {
        if std::env::var("DSMEC_PROP_SEED").is_ok() {
            return; // override active: all properties share the seed
        }
        assert_ne!(base_seed("a"), base_seed("b"));
    }

    #[test]
    fn scale_helpers_shrink_monotonically() {
        assert_eq!(Scale::FULL.upper(1, 9), 9);
        assert_eq!(Scale::new(0.5).upper(1, 9), 5);
        assert_eq!(Scale::MIN.upper(1, 9), 1);
        assert_eq!(Scale::FULL.truncate(40), 40);
        assert_eq!(Scale::new(0.25).truncate(40), 10);
        assert_eq!(Scale::MIN.truncate(40), 1); // never empty
        assert_eq!(Scale::MIN.truncate(0), 0);
        // Factors outside (0, 1] clamp instead of exploding the case.
        assert_eq!(Scale::new(7.0).factor(), 1.0);
        assert!(Scale::new(0.0).factor() >= Scale::MIN.factor());
    }

    #[test]
    fn shrinker_minimizes_a_failing_range() {
        // The property fails whenever the drawn value is >= 10; drawing
        // from 0..=scale.upper(0, 10_000) means small scales draw small
        // values, so the minimized case must be far below full size.
        let shrunk = find_failure_scaled(
            "shrinks_large_draws",
            8,
            |rng, scale| rng.gen_range(0..=scale.upper(0, 10_000)) as u64,
            |&x| {
                prop_assert!(x < 10, "drew {x}");
                Ok(())
            },
        )
        .expect("full-scale draws from 0..=10000 are >= 10 with overwhelming probability");
        assert!(shrunk.scale.factor() < 1.0, "shrinker never ran: {shrunk}");
        assert!(
            shrunk.case < 100,
            "minimized case {} should be tiny (scale {})",
            shrunk.case,
            shrunk.scale.factor()
        );
        assert!(shrunk.message.contains("drew"), "{}", shrunk.message);
        assert!(shrunk.shrink_runs >= 10, "tries every halving");
        // The reported (seed, scale) pair regenerates the exact case.
        let mut rng = ChaCha8Rng::seed_from_u64(shrunk.seed);
        let replayed = rng.gen_range(0..=shrunk.scale.upper(0, 10_000)) as u64;
        assert_eq!(replayed, shrunk.case);
    }

    #[test]
    fn shrinker_reports_full_scale_when_small_cases_pass() {
        // Failure needs x >= 5000: only (near-)full scales can produce
        // it, so the minimized case stays at a large scale.
        let shrunk = find_failure_scaled(
            "only_fails_big",
            8,
            |rng, scale| rng.gen_range(0..=scale.upper(0, 10_000)) as u64,
            |&x| {
                prop_assert!(x < 5000, "drew {x}");
                Ok(())
            },
        );
        if let Some(shrunk) = shrunk {
            assert!(shrunk.case >= 5000, "{shrunk}");
            assert!(shrunk.scale.factor() >= 0.25, "{shrunk}");
        }
    }

    #[test]
    fn passing_scaled_property_returns_none_and_runs_all_cases() {
        let mut ran = 0u64;
        let failure = find_failure_scaled(
            "scaled_always_holds",
            9,
            |rng, scale| {
                ran += 1;
                rng.gen_range(0..=scale.upper(0, 100)) as u64
            },
            |&x| {
                prop_assert!(x <= 100);
                Ok(())
            },
        );
        assert!(failure.is_none());
        assert_eq!(ran, 9);
    }

    #[test]
    fn run_cases_scaled_panics_with_replay_pair() {
        let err = std::panic::catch_unwind(|| {
            run_cases_scaled(
                "scaled_always_fails",
                3,
                |rng, scale| rng.gen_range(0..=scale.upper(0, 50)) as u64,
                |_| {
                    prop_assert!(false, "intentional");
                    Ok(())
                },
            );
        })
        .unwrap_err();
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("scaled_always_fails"), "{message}");
        assert!(message.contains("replay_scaled"), "{message}");
        assert!(message.contains("minimized case"), "{message}");
        assert!(message.contains("intentional"), "{message}");
    }

    #[test]
    fn replay_scaled_reproduces_and_passes() {
        // A passing replay is silent; a failing one panics with the case.
        replay_scaled(
            "replay_ok",
            42,
            Scale::FULL,
            |rng, _| rng.gen_range(0..10u64),
            |&x| {
                prop_assert!(x < 10);
                Ok(())
            },
        );
        let err = std::panic::catch_unwind(|| {
            replay_scaled(
                "replay_fails",
                42,
                Scale::new(0.5),
                |rng, _| rng.gen_range(0..10u64),
                |_| {
                    prop_assert!(false, "boom");
                    Ok(())
                },
            );
        })
        .unwrap_err();
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("scale 0.5"), "{message}");
        assert!(message.contains("boom"), "{message}");
    }

    #[test]
    fn prop_assert_eq_reports_values() {
        let result: CaseResult = (|| {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        })();
        let message = result.unwrap_err();
        assert!(message.contains("left 2, right 3"), "{message}");
    }
}
