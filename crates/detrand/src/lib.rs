//! # detrand — deterministic randomness for the DSMEC workspace
//!
//! A self-contained replacement for the tiny slice of `rand` +
//! `rand_chacha` this workspace actually used, so tier-1 verification
//! builds with no crate registry at all:
//!
//! * [`ChaCha8Rng`] — a ChaCha8 stream-cipher generator, seedable from a
//!   single `u64`. Output is a pure function of the seed, identical on
//!   every platform and thread, which is what the bit-for-bit
//!   serial-vs-parallel determinism guarantee of the sweep engine rests
//!   on.
//! * [`ChaCha8Rng::gen_range`] / [`ChaCha8Rng::gen_bool`] /
//!   [`ChaCha8Rng::normal`] — the sampling surface used by
//!   `mec-sim::workload`/`mobility` and `core::hta`.
//! * [`SliceRandom`] — `shuffle` and `choose` for slices.
//! * [`prop`] — a seeded property-test harness replacing `proptest` call
//!   sites: fixed case counts, explicit per-case seeds, and failure
//!   messages that name the reproducing seed.
//!
//! The stream is *frozen*: `tests` pin the first outputs for a known
//! seed, so any accidental change to the core shows up as a test failure
//! rather than silently shifting every generated scenario.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod prop;

use std::ops::{Range, RangeInclusive};

/// A deterministic ChaCha8 random-number generator.
///
/// The state is the standard ChaCha layout: 4 constant words, 8 key
/// words derived from the seed, a 64-bit block counter, and a 64-bit
/// stream id (always 0 here). Eight rounds (four double-rounds) per
/// block; the keystream is consumed one 32-bit word at a time.
///
/// ```
/// use detrand::ChaCha8Rng;
/// let mut a = ChaCha8Rng::seed_from_u64(7);
/// let mut b = ChaCha8Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "refill".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// SplitMix64 step — expands the 64-bit seed into the 256-bit key.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// Builds a generator whose whole stream is a function of `seed`.
    ///
    /// The 256-bit ChaCha key is expanded from the seed with SplitMix64,
    /// so nearby seeds (0, 1, 2, …) still produce uncorrelated streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let word = splitmix64(&mut sm);
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }

    /// Generates the next 64-byte keystream block into `self.block`.
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] is the stream id, fixed to 0.
        let input = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }

    /// The next 32 keystream bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    /// The next 64 keystream bits (two consecutive 32-bit words,
    /// little-endian order).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }

    /// A uniform `u64` in `[0, n)`, without modulo bias (Lemire's
    /// widening-multiply rejection method).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn next_u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// A uniform `f64` in `[0, 1]` (both endpoints reachable).
    #[inline]
    fn next_f64_inclusive(&mut self) -> f64 {
        const DENOM: f64 = ((1u64 << 53) - 1) as f64;
        (self.next_u64() >> 11) as f64 / DENOM
    }

    /// A uniform sample from `range` — `Range`/`RangeInclusive` over
    /// `usize`, `u64`, or `f64`, mirroring the `rand` call forms the
    /// workspace uses.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or (for floats) not finite.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.next_f64() < p
    }

    /// A normal (Gaussian) sample with the given mean and standard
    /// deviation, via the Box–Muller transform.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "invalid normal parameters: mean {mean}, std_dev {std_dev}"
        );
        // u1 in (0, 1] so ln(u1) is finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let radius = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * radius * (std::f64::consts::TAU * u2).cos()
    }
}

/// A range that [`ChaCha8Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut ChaCha8Rng) -> T;
}

impl SampleRange<usize> for Range<usize> {
    #[inline]
    fn sample(self, rng: &mut ChaCha8Rng) -> usize {
        assert!(self.start < self.end, "empty range {:?}", self);
        let width = (self.end - self.start) as u64;
        self.start + rng.next_u64_below(width) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    #[inline]
    fn sample(self, rng: &mut ChaCha8Rng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let width = (hi - lo) as u64;
        if width == u64::MAX {
            return rng.next_u64() as usize;
        }
        lo + rng.next_u64_below(width + 1) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    #[inline]
    fn sample(self, rng: &mut ChaCha8Rng) -> u64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        self.start + rng.next_u64_below(self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, rng: &mut ChaCha8Rng) -> f64 {
        assert!(
            self.start.is_finite() && self.end.is_finite() && self.start < self.end,
            "invalid float range {:?}",
            self
        );
        let width = self.end - self.start;
        let sample = self.start + rng.next_f64() * width;
        // Floating rounding can land exactly on the excluded endpoint;
        // clamp to the largest value strictly below it.
        if sample >= self.end {
            f64::from_bits(self.end.to_bits() - 1)
        } else {
            sample
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample(self, rng: &mut ChaCha8Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid float range {lo}..={hi}"
        );
        let sample = lo + rng.next_f64_inclusive() * (hi - lo);
        sample.clamp(lo, hi)
    }
}

/// Random operations on slices: in-place Fisher–Yates [`shuffle`] and
/// uniform element [`choose`].
///
/// [`shuffle`]: SliceRandom::shuffle
/// [`choose`]: SliceRandom::choose
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Uniformly permutes the slice in place.
    fn shuffle(&mut self, rng: &mut ChaCha8Rng);

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<'a>(&'a self, rng: &mut ChaCha8Rng) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut ChaCha8Rng) {
        for i in (1..self.len()).rev() {
            let j = rng.next_u64_below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<'a>(&'a self, rng: &mut ChaCha8Rng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.next_u64_below(self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: the first keystream words for seed 0 and a
    /// large seed, frozen at the stream's introduction. Any change to
    /// the seeding or the core shifts every generated scenario in the
    /// workspace, so it must be deliberate and visible here.
    #[test]
    fn keystream_is_frozen() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let head: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            head,
            vec![
                0xbf94_d133_2d8e_e5e8,
                0x3a73_8775_a6da_5a01,
                0x3d46_ff10_c143_ee06,
                0x17c6_ab23_e9f6_424f,
            ],
            "ChaCha8 stream changed for seed 0: {head:#018x?}"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(0x0123_4567_89ab_cdef);
        let head: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            head,
            vec![
                0xebc1_da95_2141_ac05,
                0x2743_2138_41bb_2a12,
                0xab91_da80_8a06_911b,
                0x05c8_33b7_ac2c_c370,
            ],
            "ChaCha8 stream changed for seed 0x0123456789abcdef: {head:#018x?}"
        );
    }

    #[test]
    fn same_seed_same_stream_distinct_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let sa: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn range_samples_stay_in_bounds_and_cover() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(0..7usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "7 buckets not all hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(3..=9usize);
            assert!((3..=9).contains(&v));
            let f = rng.gen_range(-2.0..=5.0f64);
            assert!((-2.0..=5.0).contains(&f));
            let g = rng.gen_range(1e-12..1.0f64);
            assert!((1e-12..1.0).contains(&g));
        }
    }

    #[test]
    fn float_range_mean_is_central() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..=1.0f64)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "uniform mean drifted: {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / f64::from(n);
        assert!((rate - 0.3).abs() < 0.02, "gen_bool(0.3) rate {rate}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation_and_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..10).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());

        // Position histogram of element 0 over many shuffles.
        let trials = 6000;
        let mut counts = [0usize; 6];
        for _ in 0..trials {
            let mut w: Vec<usize> = (0..6).collect();
            w.shuffle(&mut rng);
            counts[w.iter().position(|&x| x == 0).unwrap()] += 1;
        }
        let expected = trials as f64 / 6.0;
        for (pos, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(
                dev < 0.15,
                "position {pos} count {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[items.iter().position(|&y| y == x).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((mean - 2.0).abs() < 0.1, "normal mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "normal std {}", var.sqrt());
    }

    #[test]
    fn cross_thread_seed_independence() {
        // The same seed yields the same stream on every thread, and
        // per-thread seeds yield the streams their seeds dictate,
        // regardless of interleaving — there is no hidden global state.
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(t % 4);
                    (
                        t % 4,
                        (0..256).map(|_| rng.next_u64()).collect::<Vec<u64>>(),
                    )
                })
            })
            .collect();
        let results: Vec<(u64, Vec<u64>)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (seed, stream) in &results {
            let mut reference = ChaCha8Rng::seed_from_u64(*seed);
            let expect: Vec<u64> = (0..256).map(|_| reference.next_u64()).collect();
            assert_eq!(stream, &expect, "thread stream diverged for seed {seed}");
        }
        assert_ne!(results[0].1, results[1].1, "distinct seeds must differ");
    }

    #[test]
    fn below_is_unbiased_at_small_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let trials = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            counts[rng.next_u64_below(3) as usize] += 1;
        }
        let expected = trials as f64 / 3.0;
        for &c in &counts {
            assert!((c as f64 - expected).abs() / expected < 0.05, "{counts:?}");
        }
    }
}
