//! Fixture tests for the parser's edge cases: exponent overflow, the
//! negative-zero token, and duplicate object keys.
//!
//! These pin behavior the experiment files rely on: a number that
//! overflows `f64` is a *typed decode* error (never a silent infinity),
//! `-0` keeps its sign bit through the token representation, and
//! duplicate keys are rejected wherever they appear, with positions.

use djson::{from_str, parse, Json, Number};

/// `1e999` is valid JSON grammar, so it parses into a value — the exact
/// token is preserved — but decoding it into `f64` is a typed error, not
/// `inf`.
#[test]
fn exponent_overflow_is_a_typed_decode_error() {
    let v = parse("1e999").unwrap();
    match &v {
        Json::Num(n) => {
            assert_eq!(n.as_token(), "1e999");
            assert_eq!(n.as_f64(), None, "overflowing token must not yield inf");
        }
        other => panic!("expected number, got {other:?}"),
    }
    // The exact token round-trips even though no f64 can hold it.
    assert_eq!(v.render(false), "1e999");

    for overflow in ["1e999", "-1e999", "1e308999", "123456789e999999"] {
        let err = from_str::<f64>(overflow).unwrap_err();
        assert!(
            err.to_string().contains("overflows f64"),
            "{overflow}: {err}"
        );
    }
    // Underflow is not overflow: tiny magnitudes round to (signed) zero.
    assert_eq!(from_str::<f64>("1e-999").unwrap(), 0.0);
    assert_eq!(from_str::<f64>("-1e-999").unwrap(), 0.0);
    assert!(from_str::<f64>("-1e-999").unwrap().is_sign_negative());
    // The largest finite double still decodes.
    assert_eq!(from_str::<f64>("1.7976931348623157e308").unwrap(), f64::MAX);
}

/// Overflowing tokens nested in a struct field report the field path.
#[test]
fn exponent_overflow_reports_the_field_path() {
    let err = from_str::<Vec<f64>>("[1.0, 2e999]").unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains("overflows f64") && text.contains('1'),
        "path should name the offending element: {text}"
    );
}

/// `-0` is legal JSON: it decodes to a genuine negative zero for floats,
/// round-trips its token, and is rejected by the unsigned decoders.
#[test]
fn negative_zero_keeps_its_sign_and_stays_out_of_unsigned() {
    let v = from_str::<f64>("-0").unwrap();
    assert_eq!(v, 0.0);
    assert!(v.is_sign_negative(), "-0 must keep its sign bit");
    let v = from_str::<f64>("-0.0").unwrap();
    assert!(v.is_sign_negative());

    // Token-exact round trip at the value level.
    assert_eq!(parse("-0").unwrap().render(false), "-0");
    // And f64 -> token -> f64 keeps the sign too.
    let n = Number::from_f64(-0.0).unwrap();
    assert_eq!(n.as_token(), "-0");
    assert!(n.as_f64().unwrap().is_sign_negative());

    // Unsigned decoders reject the `-` outright rather than folding it
    // into zero; i64 accepts it as plain zero (no sign to preserve).
    assert!(from_str::<u64>("-0")
        .unwrap_err()
        .to_string()
        .contains("-0"));
    assert!(from_str::<usize>("-0").is_err());
    assert_eq!(from_str::<i64>("-0").unwrap(), 0);
}

/// Duplicate keys are rejected at any nesting depth, naming the key and
/// the position of the second occurrence.
#[test]
fn duplicate_keys_rejected_at_any_depth() {
    let err = parse("{\"a\":1,\"a\":2}").unwrap_err();
    assert!(err.to_string().contains("duplicate object key `a`"));

    let nested = "{\n  \"outer\": {\"x\": 1, \"x\": 2}\n}";
    let err = parse(nested).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("duplicate object key `x`"), "{text}");
    assert!(
        text.contains("line 2"),
        "position should be reported: {text}"
    );

    // Escapes are resolved before comparison: `\u0061` is `a`.
    let escaped = "{\"a\":1,\"\\u0061\":2}";
    let err = parse(escaped).unwrap_err();
    assert!(
        err.to_string().contains("duplicate object key `a`"),
        "escaped spelling of the same key must still collide: {err}"
    );

    // Arrays of objects: each object checks its own keys independently.
    assert!(parse("[{\"k\":1},{\"k\":2}]").is_ok());
    assert!(parse("[{\"k\":1,\"k\":2}]").is_err());
}

/// Grammar edges around the exponent marker stay errors (not panics and
/// not silent truncations).
#[test]
fn malformed_exponents_are_syntax_errors() {
    for bad in ["1e", "1e+", "1e-", "1E ", "1e1.5", "1.e5", "-e5", "0e"] {
        let r = parse(bad);
        assert!(r.is_err(), "{bad:?} must be rejected, got {r:?}");
    }
    // Huge exponent digits are grammar-fine; only typed decode objects.
    assert!(parse("1e18446744073709551616").is_ok());
}
