//! Codec traits, primitive implementations, the strict object reader,
//! and the `macro_rules!` codecs that replace serde derives.

use crate::value::{Json, JsonError, Number};

/// Encodes a value as a [`Json`] tree.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Decodes a value from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Decodes `value`, or explains why it does not match.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] carrying a field path on any mismatch.
    fn from_json(value: &Json) -> Result<Self, JsonError>;

    /// The value to use when an object field is absent. `None` means
    /// "required" (the default); `Option<T>` overrides this so missing
    /// optional fields decode as `None`, matching serde's behavior.
    fn if_absent() -> Option<Self> {
        None
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(value.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::expected("bool", other)),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        // Non-finite floats have no JSON token; emit null (serde_json's
        // behavior). They do not round-trip — decoding null as f64 errors.
        Number::from_f64(*self).map_or(Json::Null, Json::Num)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Num(n) => n
                .as_f64()
                .ok_or_else(|| JsonError::msg(format!("number {n} overflows f64"))),
            other => Err(JsonError::expected("number", other)),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        f64::from(*self).to_json()
    }
}

impl FromJson for f32 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        f64::from_json(value).map(|v| v as f32)
    }
}

macro_rules! unsigned_codec {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Num(Number::from_u64(u64::from(*self)))
            }
        }
        impl FromJson for $ty {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                match value {
                    Json::Num(n) => n
                        .as_u64()
                        .and_then(|v| <$ty>::try_from(v).ok())
                        .ok_or_else(|| {
                            JsonError::msg(format!(
                                "number {n} is not a valid {}",
                                stringify!($ty)
                            ))
                        }),
                    other => Err(JsonError::expected("unsigned integer", other)),
                }
            }
        }
    )+};
}

unsigned_codec!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(Number::from_u64(*self as u64))
    }
}

impl FromJson for usize {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        u64::from_json(value).and_then(|v| {
            usize::try_from(v).map_err(|_| JsonError::msg(format!("number {v} overflows usize")))
        })
    }
}

macro_rules! signed_codec {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Num(Number::from_i64(i64::from(*self)))
            }
        }
        impl FromJson for $ty {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                match value {
                    Json::Num(n) => n
                        .as_i64()
                        .and_then(|v| <$ty>::try_from(v).ok())
                        .ok_or_else(|| {
                            JsonError::msg(format!(
                                "number {n} is not a valid {}",
                                stringify!($ty)
                            ))
                        }),
                    other => Err(JsonError::expected("integer", other)),
                }
            }
        }
    )+};
}

signed_codec!(i8, i16, i32, i64);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::expected("string", other)),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Arr(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| T::from_json(item).map_err(|e| e.at(format!("[{i}]"))))
                .collect(),
            other => Err(JsonError::expected("array", other)),
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let items = Vec::<T>::from_json(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| JsonError::msg(format!("expected array of {N}, got {len}")))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }

    fn if_absent() -> Option<Self> {
        Some(None)
    }
}

macro_rules! tuple_codec {
    ($n:literal; $($idx:tt : $name:ident),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                match value {
                    Json::Arr(items) if items.len() == $n => Ok((
                        $($name::from_json(&items[$idx]).map_err(|e| e.at(format!("[{}]", $idx)))?,)+
                    )),
                    Json::Arr(items) => Err(JsonError::msg(format!(
                        "expected array of {}, got {}", $n, items.len()
                    ))),
                    other => Err(JsonError::expected("array", other)),
                }
            }
        }
    };
}

tuple_codec!(2; 0: A, 1: B);
tuple_codec!(3; 0: A, 1: B, 2: C);

/// Strict object decoder used by [`impl_json_struct!`]: every field is
/// taken exactly once, missing required fields and unknown fields are
/// errors, and every error is prefixed with `Type.field`.
///
/// [`impl_json_struct!`]: crate::impl_json_struct
#[derive(Debug)]
pub struct ObjReader<'a> {
    type_name: &'static str,
    entries: &'a [(String, Json)],
    taken: Vec<bool>,
}

impl<'a> ObjReader<'a> {
    /// Starts decoding `value` as an object of type `type_name`.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] unless `value` is an object.
    pub fn new(value: &'a Json, type_name: &'static str) -> Result<Self, JsonError> {
        match value {
            Json::Obj(entries) => Ok(ObjReader {
                type_name,
                entries,
                taken: vec![false; entries.len()],
            }),
            other => Err(JsonError::expected("object", other).at(type_name)),
        }
    }

    /// Decodes field `name`, consuming it. Absent fields decode via
    /// [`FromJson::if_absent`] (an error for required types).
    ///
    /// # Errors
    ///
    /// Returns a path-prefixed [`JsonError`] if the field is missing or
    /// its value mismatches.
    pub fn field<T: FromJson>(&mut self, name: &str) -> Result<T, JsonError> {
        for (i, (key, value)) in self.entries.iter().enumerate() {
            if key == name && !self.taken[i] {
                self.taken[i] = true;
                return T::from_json(value).map_err(|e| e.at(format!("{}.{name}", self.type_name)));
            }
        }
        T::if_absent()
            .ok_or_else(|| JsonError::msg(format!("missing field `{name}`")).at(self.type_name))
    }

    /// Finishes decoding; any field not consumed is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the first unknown field.
    pub fn finish(self) -> Result<(), JsonError> {
        for (i, (key, _)) in self.entries.iter().enumerate() {
            if !self.taken[i] {
                return Err(JsonError::msg(format!("unknown field `{key}`")).at(self.type_name));
            }
        }
        Ok(())
    }
}

/// The payload of an externally-tagged enum variant: `value` must be an
/// object with exactly one key equal to `variant`. Used by
/// [`impl_json_enum!`](crate::impl_json_enum).
#[must_use]
pub fn variant_payload<'a>(value: &'a Json, variant: &str) -> Option<&'a Json> {
    match value {
        Json::Obj(entries) if entries.len() == 1 && entries[0].0 == variant => Some(&entries[0].1),
        _ => None,
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a struct with named fields,
/// mirroring a serde derive: an object keyed by field name, strict
/// about missing/unknown/duplicate fields on decode.
///
/// Invoke in the module that owns the type (private fields are fine):
///
/// ```
/// use djson::impl_json_struct;
///
/// #[derive(Debug, PartialEq)]
/// struct Point { x: f64, y: f64 }
/// impl_json_struct!(Point { x, y });
///
/// let p: Point = djson::from_str("{\"x\":1.0,\"y\":2.5}").unwrap();
/// assert_eq!(p, Point { x: 1.0, y: 2.5 });
/// assert_eq!(djson::to_string(&p), "{\"x\":1,\"y\":2.5}");
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::JsonError> {
                let mut reader = $crate::ObjReader::new(value, stringify!($ty))?;
                let decoded = $ty {
                    $($field: reader.field(stringify!($field))?,)+
                };
                reader.finish()?;
                Ok(decoded)
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a transparent newtype: the
/// wrapper encodes exactly as its inner value (serde's
/// `#[serde(transparent)]`).
#[macro_export]
macro_rules! impl_json_newtype {
    ($ty:ident($inner:ty)) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::ToJson::to_json(&self.0)
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::JsonError> {
                <$inner as $crate::FromJson>::from_json(value)
                    .map($ty)
                    .map_err(|e| e.at(stringify!($ty)))
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for an enum with serde's external
/// tagging: unit variants are bare strings, single-payload variants are
/// `{"Variant": <payload>}`, struct variants are
/// `{"Variant": {"field": ...}}`.
///
/// ```
/// use djson::impl_json_enum;
///
/// #[derive(Debug, PartialEq)]
/// enum Rule { ArgMax, Randomized { seed: u64 }, Scaled(f64) }
/// impl_json_enum!(Rule { ArgMax, Randomized { seed: u64 }, Scaled(f64) });
///
/// assert_eq!(djson::to_string(&Rule::ArgMax), "\"ArgMax\"");
/// assert_eq!(
///     djson::to_string(&Rule::Randomized { seed: 5 }),
///     "{\"Randomized\":{\"seed\":5}}"
/// );
/// assert_eq!(djson::from_str::<Rule>("{\"Scaled\":1.5}").unwrap(), Rule::Scaled(1.5));
/// ```
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $($body:tt)* }) => {
        $crate::__json_enum_munch!($ty, [] $($body)*);
    };
}

/// Normalizes the variant list into `{unit V}` / `{tuple V ty}` /
/// `{strct V {f: ty, ...}}` tokens, then emits the impls. Internal.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_enum_munch {
    // Struct variant.
    ($ty:ident, [$($acc:tt)*] $v:ident { $($f:ident : $ft:ty),+ $(,)? } , $($rest:tt)*) => {
        $crate::__json_enum_munch!($ty, [$($acc)* {strct $v {$($f: $ft),+}}] $($rest)*);
    };
    ($ty:ident, [$($acc:tt)*] $v:ident { $($f:ident : $ft:ty),+ $(,)? }) => {
        $crate::__json_enum_munch!($ty, [$($acc)* {strct $v {$($f: $ft),+}}]);
    };
    // Single-payload tuple variant.
    ($ty:ident, [$($acc:tt)*] $v:ident ( $inner:ty ) , $($rest:tt)*) => {
        $crate::__json_enum_munch!($ty, [$($acc)* {tuple $v $inner}] $($rest)*);
    };
    ($ty:ident, [$($acc:tt)*] $v:ident ( $inner:ty )) => {
        $crate::__json_enum_munch!($ty, [$($acc)* {tuple $v $inner}]);
    };
    // Unit variant.
    ($ty:ident, [$($acc:tt)*] $v:ident , $($rest:tt)*) => {
        $crate::__json_enum_munch!($ty, [$($acc)* {unit $v}] $($rest)*);
    };
    ($ty:ident, [$($acc:tt)*] $v:ident) => {
        $crate::__json_enum_munch!($ty, [$($acc)* {unit $v}]);
    };
    // Done: emit.
    ($ty:ident, [$($variant:tt)*]) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $($crate::__json_enum_to_arm!($ty, self, $variant);)*
                unreachable!("all variants covered")
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::JsonError> {
                $($crate::__json_enum_from_arm!($ty, value, $variant);)*
                Err($crate::JsonError::msg(format!(
                    "unrecognized {} variant (got {})",
                    stringify!($ty),
                    value.kind()
                )))
            }
        }
    };
}

/// One encode step per variant shape. Internal.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_enum_to_arm {
    ($ty:ident, $slf:ident, {unit $v:ident}) => {
        if let $ty::$v = $slf {
            return $crate::Json::Str(stringify!($v).to_string());
        }
    };
    ($ty:ident, $slf:ident, {tuple $v:ident $inner:ty}) => {
        if let $ty::$v(payload) = $slf {
            return $crate::Json::Obj(vec![(
                stringify!($v).to_string(),
                $crate::ToJson::to_json(payload),
            )]);
        }
    };
    ($ty:ident, $slf:ident, {strct $v:ident {$($f:ident : $ft:ty),+}}) => {
        if let $ty::$v { $($f),+ } = $slf {
            return $crate::Json::Obj(vec![(
                stringify!($v).to_string(),
                $crate::Json::Obj(vec![
                    $((stringify!($f).to_string(), $crate::ToJson::to_json($f)),)+
                ]),
            )]);
        }
    };
}

/// One decode step per variant shape. Internal.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_enum_from_arm {
    ($ty:ident, $value:ident, {unit $v:ident}) => {
        if let $crate::Json::Str(name) = $value {
            if name == stringify!($v) {
                return Ok($ty::$v);
            }
        }
    };
    ($ty:ident, $value:ident, {tuple $v:ident $inner:ty}) => {
        if let Some(payload) = $crate::variant_payload($value, stringify!($v)) {
            return <$inner as $crate::FromJson>::from_json(payload)
                .map($ty::$v)
                .map_err(|e| e.at(format!("{}::{}", stringify!($ty), stringify!($v))));
        }
    };
    ($ty:ident, $value:ident, {strct $v:ident {$($f:ident : $ft:ty),+}}) => {
        if let Some(payload) = $crate::variant_payload($value, stringify!($v)) {
            let decode = || -> Result<$ty, $crate::JsonError> {
                let mut reader = $crate::ObjReader::new(payload, stringify!($v))?;
                let decoded = $ty::$v {
                    $($f: reader.field(stringify!($f))?,)+
                };
                reader.finish()?;
                Ok(decoded)
            };
            return decode()
                .map_err(|e| e.at(format!("{}::{}", stringify!($ty), stringify!($v))));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate as djson;
    use crate::{from_str, to_string};

    #[derive(Debug, PartialEq)]
    struct Inner {
        id: usize,
        label: String,
    }
    djson::impl_json_struct!(Inner { id, label });

    #[derive(Debug, PartialEq)]
    struct Outer {
        inner: Inner,
        values: Vec<f64>,
        flag: Option<bool>,
    }
    djson::impl_json_struct!(Outer {
        inner,
        values,
        flag
    });

    #[derive(Debug, PartialEq)]
    struct Wrapped(f64);
    djson::impl_json_newtype!(Wrapped(f64));

    #[derive(Debug, PartialEq)]
    enum Mixed {
        Plain,
        Weighted(f64),
        Seeded { seed: u64, strict: bool },
    }
    djson::impl_json_enum!(Mixed {
        Plain,
        Weighted(f64),
        Seeded { seed: u64, strict: bool },
    });

    #[test]
    fn struct_round_trip_and_field_order() {
        let v = Outer {
            inner: Inner {
                id: 7,
                label: "a".into(),
            },
            values: vec![1.5, -2.0],
            flag: None,
        };
        let text = to_string(&v);
        assert_eq!(
            text,
            "{\"inner\":{\"id\":7,\"label\":\"a\"},\"values\":[1.5,-2],\"flag\":null}"
        );
        assert_eq!(from_str::<Outer>(&text).unwrap(), v);
    }

    #[test]
    fn missing_optional_field_decodes_as_none() {
        let v: Outer = from_str("{\"inner\":{\"id\":1,\"label\":\"x\"},\"values\":[]}").unwrap();
        assert_eq!(v.flag, None);
    }

    #[test]
    fn missing_required_field_is_a_pathed_error() {
        let err = from_str::<Outer>("{\"values\":[],\"flag\":true}").unwrap_err();
        assert_eq!(err.to_string(), "Outer: missing field `inner`");
    }

    #[test]
    fn unknown_field_is_rejected_with_its_name() {
        let err = from_str::<Inner>("{\"id\":1,\"label\":\"x\",\"bogus\":0}").unwrap_err();
        assert_eq!(err.to_string(), "Inner: unknown field `bogus`");
    }

    #[test]
    fn wrong_type_error_names_the_path() {
        let err = from_str::<Outer>(
            "{\"inner\":{\"id\":\"one\",\"label\":\"x\"},\"values\":[],\"flag\":null}",
        )
        .unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("Outer.inner") && text.contains("Inner.id"),
            "{text}"
        );
        assert!(text.contains("expected unsigned integer"), "{text}");
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(to_string(&Wrapped(2.5)), "2.5");
        assert_eq!(from_str::<Wrapped>("2.5").unwrap(), Wrapped(2.5));
    }

    #[test]
    fn enum_shapes_match_serde_external_tagging() {
        assert_eq!(to_string(&Mixed::Plain), "\"Plain\"");
        assert_eq!(to_string(&Mixed::Weighted(0.5)), "{\"Weighted\":0.5}");
        assert_eq!(
            to_string(&Mixed::Seeded {
                seed: 9,
                strict: true
            }),
            "{\"Seeded\":{\"seed\":9,\"strict\":true}}"
        );
        for v in [
            Mixed::Plain,
            Mixed::Weighted(-1.25),
            Mixed::Seeded {
                seed: u64::MAX,
                strict: false,
            },
        ] {
            assert_eq!(from_str::<Mixed>(&to_string(&v)).unwrap(), v);
        }
    }

    #[test]
    fn enum_rejects_unknown_variant_readably() {
        let err = from_str::<Mixed>("\"Nope\"").unwrap_err();
        assert!(
            err.to_string().contains("unrecognized Mixed variant"),
            "{err}"
        );
        let err = from_str::<Mixed>("{\"Seeded\":{\"seed\":1}}").unwrap_err();
        assert!(err.to_string().contains("missing field `strict`"), "{err}");
    }

    #[test]
    fn integer_strictness() {
        assert!(from_str::<u64>("1.5").is_err());
        assert!(from_str::<u64>("-1").is_err());
        assert!(from_str::<usize>("18446744073709551616").is_err());
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-9223372036854775808").unwrap(), i64::MIN);
    }
}
