//! # djson — a minimal, deterministic JSON layer
//!
//! Replaces the `serde`/`serde_json` dependency for this workspace so
//! tier-1 verification builds with no crate registry. Scope is exactly
//! what the workspace needs, nothing more:
//!
//! * [`Json`] — a value tree whose objects are *insertion-ordered*
//!   vectors (serialization is deterministic: same struct, same bytes —
//!   the cross-figure cache hashes these bytes) and whose numbers keep
//!   their exact source token ([`Number`]), so `u64` bitset words and
//!   shortest-round-trip `f64`s survive a round trip losslessly.
//! * [`parse`] — a strict recursive-descent parser with line/column
//!   errors and a depth limit.
//! * [`to_string`] / [`to_string_pretty`] / [`to_vec`] — compact and
//!   2-space-indented writers.
//! * [`ToJson`] / [`FromJson`] — the codec traits, implemented for the
//!   primitives/containers the workspace serializes, plus the
//!   [`impl_json_struct!`], [`impl_json_enum!`], and
//!   [`impl_json_newtype!`] macros that stand in for the former
//!   `#[derive(Serialize, Deserialize)]`.
//!
//! Wire shapes mirror what the serde derives produced, so files written
//! by earlier builds still load: structs are objects keyed by field
//! name, unit enum variants are bare strings, data-carrying variants
//! are single-key objects (`{"Randomized":{"seed":5}}`), newtypes are
//! transparent, and tuples are fixed-length arrays.
//!
//! Decoding is strict by design: unknown object fields, missing
//! non-optional fields, wrong types, duplicate keys, lossy numbers, and
//! trailing input are all *errors with a field path* (e.g.
//! `Scenario.system: devices[3].cpu: expected number, got string`), not
//! panics — malformed experiment files must fail readably.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod codec;
mod parse;
mod value;
mod write;

pub use codec::{variant_payload, FromJson, ObjReader, ToJson};
pub use parse::parse;
pub use value::{Json, JsonError, Number};

/// Parses `text` and decodes it into `T`.
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first syntax error (with line
/// and column) or decode mismatch (with a field path).
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

/// Encodes `value` compactly (no whitespace).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render(false)
}

/// Encodes `value` with 2-space indentation, one element per line.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render(true)
}

/// Encodes `value` compactly as bytes — the deterministic hashing input
/// used by the experiment caches.
pub fn to_vec<T: ToJson + ?Sized>(value: &T) -> Vec<u8> {
    to_string(value).into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_exact_numbers() {
        // u64 beyond f64's 53-bit mantissa and a shortest-round-trip f64.
        let words: Vec<u64> = vec![u64::MAX, 0x8000_0000_0000_0001, 0];
        let text = to_string(&words);
        assert_eq!(text, "[18446744073709551615,9223372036854775809,0]");
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, words);

        let xs: Vec<f64> = vec![0.1, -0.0, 1e300, 5e-324, std::f64::consts::PI];
        let back: Vec<f64> = from_str(&to_string(&xs)).unwrap();
        assert_eq!(
            back.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn non_finite_floats_encode_as_null_and_fail_to_decode() {
        assert_eq!(to_string(&f64::INFINITY), "null");
        assert_eq!(to_string(&f64::NAN), "null");
        let err = from_str::<f64>("null").unwrap_err();
        assert!(err.to_string().contains("expected number"), "{err}");
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = Json::Obj(vec![
            (
                "a".into(),
                Json::Arr(vec![Json::from(1u64), Json::from(2u64)]),
            ),
            ("b".into(), Json::Obj(vec![])),
        ]);
        let pretty = v.render(true);
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}");
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn option_and_tuple_shapes_match_serde() {
        let some: Option<u64> = Some(3);
        let none: Option<u64> = None;
        assert_eq!(to_string(&some), "3");
        assert_eq!(to_string(&none), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        let pair = (1.5f64, 2.5f64);
        assert_eq!(to_string(&pair), "[1.5,2.5]");
        assert_eq!(from_str::<(f64, f64)>("[1.5,2.5]").unwrap(), pair);
        let err = from_str::<(f64, f64)>("[1.5]").unwrap_err();
        assert!(err.to_string().contains("expected array of 2"), "{err}");
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t nul \u{0} unicode \u{1F600}";
        let text = to_string(&s.to_string());
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
