//! The JSON value tree, exact-number representation, and error type.

use std::fmt;

/// A JSON value.
///
/// Objects are insertion-ordered `(key, value)` vectors, not hash maps:
/// encoding a struct always yields the same byte sequence, which the
/// experiment caches rely on for stable config hashing.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its exact source token.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A short name for the value's type, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// The member `name` of an object, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders the value — compact, or 2-space pretty when `pretty`.
    #[must_use]
    pub fn render(&self, pretty: bool) -> String {
        let mut out = String::new();
        crate::write::write_value(self, pretty, 0, &mut out);
        out
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(Number::from_u64(v))
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Number::from_f64(v).map_or(Json::Null, Json::Num)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

/// A JSON number, stored as its exact decimal token.
///
/// Keeping the token (rather than an `f64`) makes `u64` round trips
/// lossless — bitset words use the full 64 bits, beyond `f64`'s 53-bit
/// mantissa — and makes encoding deterministic: the bytes written are
/// the bytes stored.
#[derive(Debug, Clone, PartialEq)]
pub struct Number(String);

impl Number {
    /// Wraps an already-validated JSON number token (parser use).
    pub(crate) fn from_token(token: String) -> Self {
        Number(token)
    }

    /// A number from a `u64`, exactly.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        Number(v.to_string())
    }

    /// A number from an `i64`, exactly.
    #[must_use]
    pub fn from_i64(v: i64) -> Self {
        Number(v.to_string())
    }

    /// A number from a finite `f64` via Rust's shortest-round-trip
    /// `Display`; `None` for NaN/infinities (JSON has no token for
    /// them — callers encode `null`, matching `serde_json`).
    #[must_use]
    pub fn from_f64(v: f64) -> Option<Self> {
        if v.is_finite() {
            Some(Number(format!("{v}")))
        } else {
            None
        }
    }

    /// The exact token.
    #[must_use]
    pub fn as_token(&self) -> &str {
        &self.0
    }

    /// The token as an `f64` (correctly rounded). `None` when the value
    /// overflows to an infinity (e.g. `1e999`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        self.0.parse::<f64>().ok().filter(|v| v.is_finite())
    }

    /// The token as a `u64`, only if it is exactly a non-negative
    /// integer in range (no fraction, no exponent, no overflow).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        self.0.parse::<u64>().ok()
    }

    /// The token as an `i64`, only if it is exactly an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        self.0.parse::<i64>().ok()
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A JSON syntax or decode error.
///
/// Syntax errors carry the line/column of the offending byte; decode
/// errors accumulate a field path as they unwind (`Scenario.system:
/// devices[3]: expected number, got string`).
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    path: Vec<String>,
    message: String,
}

impl JsonError {
    /// A new error with a bare message.
    #[must_use]
    pub fn msg(message: impl Into<String>) -> Self {
        JsonError {
            path: Vec::new(),
            message: message.into(),
        }
    }

    /// The standard type-mismatch message.
    #[must_use]
    pub fn expected(what: &str, got: &Json) -> Self {
        JsonError::msg(format!("expected {what}, got {}", got.kind()))
    }

    /// Prefixes a path segment (outermost first as the error unwinds).
    #[must_use]
    pub fn at(mut self, segment: impl Into<String>) -> Self {
        self.path.insert(0, segment.into());
        self
    }

    /// The accumulated field path, outermost first.
    #[must_use]
    pub fn path(&self) -> &[String] {
        &self.path
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            f.write_str(&self.message)
        } else {
            write!(f, "{}: {}", self.path.join("."), self.message)
        }
    }
}

impl std::error::Error for JsonError {}
