//! Compact and pretty JSON writers.
//!
//! Output is deterministic — objects keep insertion order and numbers
//! are emitted as their stored tokens — so equal values always produce
//! equal bytes (the property the experiment caches hash against).

use crate::value::Json;

/// Appends `value` to `out`; `pretty` selects 2-space indentation.
pub(crate) fn write_value(value: &Json, pretty: bool, indent: usize, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => out.push_str(n.as_token()),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    newline_indent(indent + 1, out);
                }
                write_value(item, pretty, indent + 1, out);
            }
            if pretty {
                newline_indent(indent, out);
            }
            out.push(']');
        }
        Json::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    newline_indent(indent + 1, out);
                }
                write_string(key, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, pretty, indent + 1, out);
            }
            if pretty {
                newline_indent(indent, out);
            }
            out.push('}');
        }
    }
}

fn newline_indent(indent: usize, out: &mut String) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::value::{Json, Number};

    #[test]
    fn compact_and_pretty_agree_semantically() {
        let v = Json::Obj(vec![
            ("x".into(), Json::Num(Number::from_u64(1))),
            (
                "y".into(),
                Json::Arr(vec![Json::Str("a\"b".into()), Json::Null]),
            ),
        ]);
        let compact = v.render(false);
        assert_eq!(compact, "{\"x\":1,\"y\":[\"a\\\"b\",null]}");
        assert_eq!(crate::parse(&compact).unwrap(), v);
        assert_eq!(crate::parse(&v.render(true)).unwrap(), v);
    }

    #[test]
    fn control_characters_escape_as_hex() {
        let v = Json::Str("\u{1}\u{1f}".into());
        assert_eq!(v.render(false), "\"\\u0001\\u001f\"");
    }
}
