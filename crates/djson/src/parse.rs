//! Strict recursive-descent JSON parser.
//!
//! RFC 8259 grammar, UTF-8 input, with the strictness the workspace
//! wants for experiment files: duplicate object keys and trailing
//! non-whitespace input are errors, nesting is depth-limited, and every
//! error names the line and column where parsing stopped.

use crate::value::{Json, JsonError, Number};

/// Maximum container nesting; beyond this the input is rejected rather
/// than risking a stack overflow on adversarial files.
const MAX_DEPTH: usize = 128;

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] with `line X column Y` positioning on any
/// syntax violation, including truncated input.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl std::fmt::Display) -> JsonError {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + consumed.iter().filter(|&&b| b == b'\n').count();
        let column = 1 + consumed.iter().rev().take_while(|&&b| b != b'\n').count();
        JsonError::msg(format!("{message} at line {line} column {column}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            Some(b) => Err(self.err(format!(
                "expected `{}`, found `{}`",
                byte as char, b as char
            ))),
            None => Err(self.err(format!("expected `{}`, found end of input", byte as char))),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                Some(b) => {
                    return Err(self.err(format!(
                        "expected `,` or `]` in array, found `{}`",
                        b as char
                    )))
                }
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string object key"));
            }
            let key = self.string()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                Some(b) => {
                    return Err(self.err(format!(
                        "expected `,` or `}}` in object, found `{}`",
                        b as char
                    )))
                }
                None => return Err(self.err("unterminated object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        Ok(Json::Num(Number::from_token(token)))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require `\uXXXX` low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(unit).ok_or_else(|| self.err("invalid escape"))?
                            };
                            out.push(ch);
                            continue; // hex4 consumed its digits already
                        }
                        Some(b) => {
                            return Err(self.err(format!("invalid escape `\\{}`", b as char)))
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is valid UTF-8 by
                    // construction of `&str`).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).expect("input was a &str");
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits at the cursor.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
        assert_eq!(
            parse("[1, 2]").unwrap(),
            Json::Arr(vec![Json::from(1u64), Json::from(2u64)])
        );
        assert_eq!(
            parse("{\"a\": [true, null]}").unwrap(),
            Json::Obj(vec![(
                "a".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null])
            )])
        );
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
    }

    #[test]
    fn number_grammar_is_strict() {
        for ok in ["0", "-0", "12.75", "-3.5e-2", "1e300", "0.0001", "2E+8"] {
            assert!(parse(ok).is_ok(), "{ok} should parse");
        }
        for bad in [
            "01", "+1", ".5", "1.", "1e", "--2", "0x10", "NaN", "Infinity",
        ] {
            assert!(parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse("{\n  \"a\": tru\n}").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 2"), "{text}");
        let err = parse("[1, 2,").unwrap_err();
        assert!(err.to_string().contains("end of input") || err.to_string().contains("column"));
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        for truncated in [
            "{",
            "[",
            "\"abc",
            "{\"a\"",
            "{\"a\":",
            "{\"a\":1,",
            "tr",
            "12e",
        ] {
            assert!(parse(truncated).is_err(), "{truncated:?} must error");
        }
    }

    #[test]
    fn duplicate_keys_and_trailing_input_rejected() {
        assert!(parse("{\"a\":1,\"a\":2}")
            .unwrap_err()
            .to_string()
            .contains("duplicate object key"));
        assert!(parse("1 2").unwrap_err().to_string().contains("trailing"));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("Aé😀".into())
        );
        assert!(parse("\"\\ud800\"").is_err(), "lone high surrogate");
        assert!(parse("\"\\udc00\"").is_err(), "lone low surrogate");
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).unwrap_err().to_string().contains("nesting"));
        let fine = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&fine).is_ok());
    }
}
